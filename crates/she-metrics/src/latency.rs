//! Latency accounting for the serving path: a log-scale histogram and a
//! throughput/latency report, both allocation-free on the record path.

use std::time::Duration;

/// A histogram over nanosecond latencies with power-of-two buckets
/// (bucket `i` holds values in `[2^(i-1), 2^i)`), covering 1 ns to ~584
/// years. Recording is a single increment; percentiles come from a scan.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; 64], count: 0, sum_ns: 0, max_ns: 0, min_ns: u64::MAX }
    }

    /// Record one latency in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros()) as usize; // 0 ns → bucket 0
        self.buckets[bucket.min(63)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Record one latency from a `Duration`.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Largest recorded latency in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Smallest recorded latency in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// The latency at quantile `q ∈ [0, 1]`, as the geometric midpoint of
    /// the bucket holding that rank (a ≤√2 relative overshoot — plenty
    /// for serving reports). Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == 0 {
                    return 0;
                }
                let lo = 1u64 << (i - 1);
                let hi = lo.saturating_mul(2);
                return ((lo as f64 * hi as f64).sqrt()) as u64;
            }
        }
        self.max_ns
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

/// Human-readable nanosecond formatting (ns / µs / ms / s).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.3}s", ns as f64 / 1e9),
    }
}

/// A throughput + latency summary for one class of network operations.
#[derive(Debug)]
pub struct NetReport {
    /// Operation-class label (e.g. "insert_batch", "query").
    pub label: String,
    /// Operations completed.
    pub ops: u64,
    /// Items carried by those operations (≥ ops for batched inserts).
    pub items: u64,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
    /// Per-operation round-trip latencies.
    pub latency: LatencyHistogram,
    /// Backpressure retries absorbed while completing `ops` (`BUSY`
    /// responses that were retried, not surfaced).
    pub retries: u64,
}

impl NetReport {
    /// Build a report; `items` counts the payload units (keys, queries).
    pub fn new(
        label: &str,
        ops: u64,
        items: u64,
        wall: Duration,
        latency: LatencyHistogram,
    ) -> Self {
        Self { label: label.to_string(), ops, items, wall, latency, retries: 0 }
    }

    /// Attach a backpressure-retry count (shown in the `retries` column).
    pub fn with_retries(mut self, retries: u64) -> Self {
        self.retries = retries;
        self
    }

    /// Operations per second over the wall clock.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.wall.as_secs_f64()
        }
    }

    /// Items per second over the wall clock.
    pub fn items_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.items as f64 / self.wall.as_secs_f64()
        }
    }

    /// Render one aligned summary line (header via [`NetReport::header`]).
    pub fn line(&self) -> String {
        let h = &self.latency;
        format!(
            "{:<14} {:>10} {:>12} {:>12.0} {:>9} {:>9} {:>9} {:>9} {:>8}",
            self.label,
            self.ops,
            self.items,
            self.items_per_sec(),
            fmt_ns(h.quantile_ns(0.50)),
            fmt_ns(h.quantile_ns(0.90)),
            fmt_ns(h.quantile_ns(0.99)),
            fmt_ns(h.max_ns()),
            self.retries,
        )
    }

    /// Column header matching [`NetReport::line`].
    pub fn header() -> String {
        format!(
            "{:<14} {:>10} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9} {:>8}",
            "op", "ops", "items", "items/s", "p50", "p90", "p99", "max", "retries"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_ordered_and_bracketed() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 1_000_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_ns(0.5);
        let p90 = h.quantile_ns(0.9);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!((100..=3200).contains(&p50), "p50 {p50}");
        assert!(p99 <= h.max_ns() * 2);
        assert_eq!(h.min_ns(), 100);
        assert_eq!(h.max_ns(), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_ns(10);
        b.record_ns(1000);
        b.record_ns(2000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 2000);
        assert_eq!(a.min_ns(), 10);
    }

    #[test]
    fn report_renders() {
        let mut h = LatencyHistogram::new();
        h.record_ns(5_000);
        let r = NetReport::new("insert", 1, 128, Duration::from_millis(10), h);
        assert!(r.items_per_sec() > 0.0);
        assert!(r.line().contains("insert"));
        assert!(NetReport::header().contains("p99"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
