//! Result tables: collect [`AccuracyResult`]s from a sweep and render them
//! as aligned text, Markdown, or CSV — the plumbing behind the figure
//! drivers and anything downstream that wants machine-readable output.

use crate::AccuracyResult;

/// A rectangular result table: rows are sweep points (e.g. memory
/// budgets), columns are algorithms.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    /// Metric name shown in headers ("FPR", "RE", "ARE").
    pub metric: String,
    /// Column (algorithm) names, in first-seen order.
    columns: Vec<String>,
    /// Rows: (label, per-column values aligned with `columns`).
    rows: Vec<(String, Vec<Option<f64>>)>,
}

impl ResultTable {
    /// New empty table for `metric`.
    pub fn new(metric: &str) -> Self {
        Self { metric: metric.to_string(), ..Default::default() }
    }

    /// Record one result under the row `label`.
    pub fn push(&mut self, label: &str, result: &AccuracyResult) {
        let col = match self.columns.iter().position(|c| c == result.name) {
            Some(i) => i,
            None => {
                self.columns.push(result.name.to_string());
                for (_, vals) in &mut self.rows {
                    vals.push(None);
                }
                self.columns.len() - 1
            }
        };
        let row = match self.rows.iter().position(|(l, _)| l == label) {
            Some(i) => i,
            None => {
                self.rows.push((label.to_string(), vec![None; self.columns.len()]));
                self.rows.len() - 1
            }
        };
        self.rows[row].1[col] = Some(result.value);
    }

    /// Number of (rows, columns).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows.len(), self.columns.len())
    }

    /// Value at (row label, algorithm), if recorded.
    pub fn get(&self, label: &str, algo: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == algo)?;
        let (_, vals) = self.rows.iter().find(|(l, _)| l == label)?;
        vals[col]
    }

    /// Render as CSV (header row + one line per sweep point).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.metric);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(label);
            for v in vals {
                out.push(',');
                if let Some(v) = v {
                    out.push_str(&format!("{v:.6}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |", self.metric));
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&format!("| {label} |"));
            for v in vals {
                match v {
                    Some(v) => out.push_str(&format!(" {v:.6} |")),
                    None => out.push_str("  |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as aligned plain text (what the drivers print).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:16}", self.metric));
        for c in &self.columns {
            out.push_str(&format!(" {c:>12}"));
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&format!("{label:16}"));
            for v in vals {
                match v {
                    Some(v) => out.push_str(&format!(" {v:>12.6}")),
                    None => out.push_str(&format!(" {:>12}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(name: &'static str, value: f64) -> AccuracyResult {
        AccuracyResult { name, value, series: vec![value], memory_bits: 0 }
    }

    #[test]
    fn collects_rows_and_columns() {
        let mut t = ResultTable::new("FPR");
        t.push("2KB", &res("SHE-BF", 0.1));
        t.push("2KB", &res("TBF", 0.9));
        t.push("8KB", &res("SHE-BF", 0.01));
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get("2KB", "TBF"), Some(0.9));
        assert_eq!(t.get("8KB", "TBF"), None);
        assert_eq!(t.get("8KB", "SHE-BF"), Some(0.01));
    }

    #[test]
    fn csv_shape() {
        let mut t = ResultTable::new("RE");
        t.push("1KB", &res("A", 0.5));
        t.push("1KB", &res("B", 0.25));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "RE,A,B");
        assert_eq!(lines[1], "1KB,0.500000,0.250000");
    }

    #[test]
    fn markdown_and_text_render() {
        let mut t = ResultTable::new("ARE");
        t.push("x", &res("A", 1.0));
        let md = t.to_markdown();
        assert!(md.contains("| ARE |") && md.contains("| x |"));
        let txt = t.to_text();
        assert!(txt.contains("ARE") && txt.contains("1.000000"));
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = ResultTable::new("RE");
        t.push("1KB", &res("A", 0.5));
        t.push("2KB", &res("B", 0.25));
        assert!(t.to_csv().contains("1KB,0.500000,\n") || t.to_csv().contains("1KB,0.500000,"));
        assert!(t.to_text().contains("-"));
    }
}
