//! Experiment runners: feed a workload, track ground truth, measure at
//! checkpoints the way §7.1 describes.

use crate::{CardinalitySketch, FrequencySketch, MemberSketch, SimilaritySketch};
use she_window::{PairTruth, WindowTruth};
use std::time::Instant;

/// Result of one accuracy run.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyResult {
    /// Algorithm name.
    pub name: &'static str,
    /// The metric (FPR / RE / ARE depending on the runner).
    pub value: f64,
    /// Per-checkpoint values (the time series behind Fig. 5).
    pub series: Vec<f64>,
    /// Memory footprint in bits at the end of the run.
    pub memory_bits: usize,
}

/// Membership FPR (Fig. 9d protocol): feed `items` keys; at each of
/// `checkpoints` evenly spaced points after warm-up, probe `probes` keys
/// that are *absent from the last `guard` items* (the paper queries items
/// not present in the recent `(1+α)·N` items; pass the largest `(1+α)·N`
/// among the algorithms under test). FPR = positives / probes.
pub fn membership_fpr(
    sketch: &mut dyn MemberSketch,
    keys: &[u64],
    guard: usize,
    checkpoints: usize,
    probes: usize,
) -> AccuracyResult {
    assert!(checkpoints >= 1 && probes >= 1);
    assert!(keys.len() > guard, "stream shorter than the probe guard window");
    let mut truth = WindowTruth::new(guard);
    let warmup = guard.min(keys.len() / 2);
    let stride = (keys.len() - warmup) / checkpoints;
    let mut series = Vec::with_capacity(checkpoints);
    let mut probe_salt = 0xA5A5_0000_0000_0000u64;
    for (i, &k) in keys.iter().enumerate() {
        sketch.insert(k);
        truth.insert(k);
        let since_warm = i + 1 - warmup.min(i + 1);
        if i + 1 > warmup
            && stride > 0
            && since_warm.is_multiple_of(stride)
            && series.len() < checkpoints
        {
            let mut fp = 0usize;
            let mut asked = 0usize;
            let mut cand = probe_salt;
            while asked < probes {
                cand = cand.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let probe = she_hash::mix64(cand);
                if truth.contains(probe) {
                    continue; // must be absent from the guard window
                }
                asked += 1;
                if sketch.query(probe) {
                    fp += 1;
                }
            }
            probe_salt = cand;
            series.push(fp as f64 / probes as f64);
        }
    }
    finish(sketch.name(), series, sketch.memory_bits())
}

/// Cardinality relative error (Figs. 9a/9b protocol): feed keys; at each
/// checkpoint compare the estimate against the exact distinct count of the
/// last `window` items; report the mean RE.
pub fn cardinality_re(
    sketch: &mut dyn CardinalitySketch,
    keys: &[u64],
    window: usize,
    checkpoints: usize,
) -> AccuracyResult {
    assert!(checkpoints >= 1);
    let mut truth = WindowTruth::new(window);
    let warmup = (2 * window).min(keys.len() / 2);
    let stride = ((keys.len() - warmup) / checkpoints).max(1);
    let mut series = Vec::with_capacity(checkpoints);
    for (i, &k) in keys.iter().enumerate() {
        sketch.insert(k);
        truth.insert(k);
        if i + 1 > warmup && (i + 1 - warmup).is_multiple_of(stride) && series.len() < checkpoints {
            let exact = truth.cardinality() as f64;
            let est = sketch.estimate();
            series.push((est - exact).abs() / exact.max(1.0));
        }
    }
    finish(sketch.name(), series, sketch.memory_bits())
}

/// Frequency ARE (Fig. 9c protocol): at each checkpoint, average the
/// relative error over (a sample of) the distinct keys of the exact window.
pub fn frequency_are(
    sketch: &mut dyn FrequencySketch,
    keys: &[u64],
    window: usize,
    checkpoints: usize,
    sample_keys: usize,
) -> AccuracyResult {
    assert!(checkpoints >= 1 && sample_keys >= 1);
    let mut truth = WindowTruth::new(window);
    let warmup = (2 * window).min(keys.len() / 2);
    let stride = ((keys.len() - warmup) / checkpoints).max(1);
    let mut series = Vec::with_capacity(checkpoints);
    for (i, &k) in keys.iter().enumerate() {
        sketch.insert(k);
        truth.insert(k);
        if i + 1 > warmup && (i + 1 - warmup).is_multiple_of(stride) && series.len() < checkpoints {
            let mut sum = 0.0;
            let mut n = 0usize;
            for (key, f) in truth.iter_counts() {
                if n >= sample_keys {
                    break;
                }
                let est = sketch.query(key) as f64;
                sum += (est - f as f64).abs() / f as f64;
                n += 1;
            }
            series.push(sum / n.max(1) as f64);
        }
    }
    finish(sketch.name(), series, sketch.memory_bits())
}

/// Similarity relative error (Fig. 9e protocol): feed aligned pairs; at
/// each checkpoint compare against the exact Jaccard index of the two
/// windows.
pub fn similarity_re(
    sketch: &mut dyn SimilaritySketch,
    pairs: &[(u64, u64)],
    window: usize,
    checkpoints: usize,
) -> AccuracyResult {
    assert!(checkpoints >= 1);
    let mut truth = PairTruth::new(window);
    let warmup = (2 * window).min(pairs.len() / 2);
    let stride = ((pairs.len() - warmup) / checkpoints).max(1);
    let mut series = Vec::with_capacity(checkpoints);
    for (i, &(a, b)) in pairs.iter().enumerate() {
        sketch.insert_pair(a, b);
        truth.insert_a(a);
        truth.insert_b(b);
        if i + 1 > warmup && (i + 1 - warmup).is_multiple_of(stride) && series.len() < checkpoints {
            let exact = truth.jaccard();
            let est = sketch.estimate();
            series.push((est - exact).abs() / exact.max(1e-9));
        }
    }
    finish(sketch.name(), series, sketch.memory_bits())
}

fn finish(name: &'static str, series: Vec<f64>, memory_bits: usize) -> AccuracyResult {
    let value =
        if series.is_empty() { f64::NAN } else { series.iter().sum::<f64>() / series.len() as f64 };
    AccuracyResult { name, value, series, memory_bits }
}

/// Insertion throughput in million items per second (Figs. 10–11
/// protocol): time a pure insertion loop over `keys`, after feeding
/// `warmup` items (the paper feeds "enough items until the performance is
/// stable").
pub fn throughput_mips(mut insert: impl FnMut(u64), keys: &[u64], warmup: usize) -> f64 {
    let warmup = warmup.min(keys.len() / 2);
    for &k in &keys[..warmup] {
        insert(k);
    }
    let timed = &keys[warmup..];
    let start = Instant::now();
    for &k in timed {
        insert(k);
    }
    let secs = start.elapsed().as_secs_f64();
    timed.len() as f64 / secs / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::*;
    use she_streams::{CaidaLike, DistinctStream, KeyStream, RelevantPair};

    const WINDOW: u64 = 1 << 12;

    fn caida(n: usize) -> Vec<u64> {
        CaidaLike::new(20_000, 1.05, 1).take_vec(n)
    }

    #[test]
    fn membership_runner_separates_she_from_starved_swamp() {
        let keys = DistinctStream::new(1).take_vec(6 * WINDOW as usize);
        let guard = 5 * WINDOW as usize;
        let mut she = SheBfAdapter::sized(WINDOW, 32 << 10, 7);
        let she_res = membership_fpr(&mut she, &keys, guard, 4, 2_000);
        let mut swamp = SwampMember::sized(WINDOW, 2 << 10, 7); // starved
        let swamp_res = membership_fpr(&mut swamp, &keys, guard, 4, 2_000);
        assert!(she_res.value < 0.02, "SHE-BF FPR {}", she_res.value);
        assert!(
            swamp_res.value > 10.0 * she_res.value.max(1e-4),
            "SWAMP {} vs SHE {}",
            swamp_res.value,
            she_res.value
        );
        assert_eq!(she_res.series.len(), 4);
    }

    #[test]
    fn cardinality_runner_tracks_truth() {
        let keys = caida(6 * WINDOW as usize);
        let mut bm = SheBmAdapter::sized(WINDOW, 4 << 10, 3);
        let res = cardinality_re(&mut bm, &keys, WINDOW as usize, 4);
        assert!(res.value < 0.2, "SHE-BM RE {}", res.value);
        let mut ideal = IdealBitmap::sized(WINDOW, 4 << 10, 3);
        let ideal_res = cardinality_re(&mut ideal, &keys, WINDOW as usize, 4);
        assert!(ideal_res.value < 0.1, "Ideal RE {}", ideal_res.value);
    }

    #[test]
    fn frequency_runner_prefers_she_over_tiny_swamp() {
        let keys = caida(6 * WINDOW as usize);
        let mut cm = SheCmAdapter::sized(WINDOW, 256 << 10, 3);
        let res = frequency_are(&mut cm, &keys, WINDOW as usize, 3, 300);
        assert!(res.value < 1.0, "SHE-CM ARE {}", res.value);
    }

    #[test]
    fn similarity_runner_tracks_truth() {
        let mut gen = RelevantPair::new(5_000, 0.6, 2);
        let pairs: Vec<(u64, u64)> = (0..5 * WINDOW as usize).map(|_| gen.next_pair()).collect();
        let mut mh = SheMhAdapter::sized(WINDOW, 4 << 10, 5);
        let res = similarity_re(&mut mh, &pairs, WINDOW as usize, 3);
        assert!(res.value < 0.35, "SHE-MH RE {}", res.value);
    }

    #[test]
    fn throughput_runner_returns_positive_mips() {
        let keys = caida(200_000);
        let mut bm = SheBmAdapter::sized(WINDOW, 8 << 10, 1);
        let mips = throughput_mips(|k| bm.insert(k), &keys, 50_000);
        assert!(mips > 0.0);
    }
}
