//! Robustness counters for the serving path: lock-free tallies of the
//! events that matter when things go wrong — evicted connections, shed
//! reads, refused connections, and (under `she-chaos`) injected faults.
//!
//! Two families:
//!
//! * [`ServeCounters`] — what the *server* did to protect itself
//!   (evictions, sheds, connection-cap refusals);
//! * [`FaultCounters`] — what a fault injector *did to* the system
//!   (partial I/O, delays, resets, bit flips, file-write faults).
//!
//! Both are plain `AtomicU64` bundles meant to be shared behind an `Arc`
//! and snapshotted for reports; increments use relaxed ordering (counts,
//! not synchronization).

use std::sync::atomic::{AtomicU64, Ordering};

/// Self-protection event counts for a running server.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Connections closed because a started frame (or a pending response)
    /// did not complete within the per-connection deadline.
    pub evicted_conns: AtomicU64,
    /// Read queries rejected with `OVERLOADED` because the target shard
    /// queue was full (reads shed before writes).
    pub shed_reads: AtomicU64,
    /// Connections refused with `OVERLOADED` at the connection cap.
    pub refused_conns: AtomicU64,
}

impl ServeCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump a counter by one (relaxed; these are statistics).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy for reporting.
    pub fn snapshot(&self) -> ServeCountersSnapshot {
        ServeCountersSnapshot {
            evicted_conns: self.evicted_conns.load(Ordering::Relaxed),
            shed_reads: self.shed_reads.load(Ordering::Relaxed),
            refused_conns: self.refused_conns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ServeCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeCountersSnapshot {
    /// See [`ServeCounters::evicted_conns`].
    pub evicted_conns: u64,
    /// See [`ServeCounters::shed_reads`].
    pub shed_reads: u64,
    /// See [`ServeCounters::refused_conns`].
    pub refused_conns: u64,
}

impl std::fmt::Display for ServeCountersSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "evicted={} shed_reads={} refused={}",
            self.evicted_conns, self.shed_reads, self.refused_conns
        )
    }
}

/// Injected-fault counts for a fault injector (`she-chaos`).
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Reads/writes deliberately cut short.
    pub partial_io: AtomicU64,
    /// Injected delays.
    pub delays: AtomicU64,
    /// Injected connection resets.
    pub resets: AtomicU64,
    /// Injected single-bit flips.
    pub bitflips: AtomicU64,
    /// File writes failed with a simulated full disk.
    pub enospc: AtomicU64,
    /// File writes torn (a prefix written, then failed).
    pub torn_writes: AtomicU64,
}

impl FaultCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A point-in-time copy for reporting.
    pub fn snapshot(&self) -> FaultCountersSnapshot {
        FaultCountersSnapshot {
            partial_io: self.partial_io.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            bitflips: self.bitflips.load(Ordering::Relaxed),
            enospc: self.enospc.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`FaultCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCountersSnapshot {
    /// See [`FaultCounters::partial_io`].
    pub partial_io: u64,
    /// See [`FaultCounters::delays`].
    pub delays: u64,
    /// See [`FaultCounters::resets`].
    pub resets: u64,
    /// See [`FaultCounters::bitflips`].
    pub bitflips: u64,
    /// See [`FaultCounters::enospc`].
    pub enospc: u64,
    /// See [`FaultCounters::torn_writes`].
    pub torn_writes: u64,
}

impl FaultCountersSnapshot {
    /// Total faults injected, all kinds.
    pub fn total(&self) -> u64 {
        self.partial_io + self.delays + self.resets + self.bitflips + self.enospc + self.torn_writes
    }
}

impl std::fmt::Display for FaultCountersSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partial={} delays={} resets={} bitflips={} enospc={} torn={}",
            self.partial_io, self.delays, self.resets, self.bitflips, self.enospc, self.torn_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_capture_increments() {
        let c = ServeCounters::new();
        ServeCounters::bump(&c.evicted_conns);
        ServeCounters::bump(&c.shed_reads);
        ServeCounters::bump(&c.shed_reads);
        let s = c.snapshot();
        assert_eq!(s.evicted_conns, 1);
        assert_eq!(s.shed_reads, 2);
        assert_eq!(s.refused_conns, 0);
        assert!(s.to_string().contains("shed_reads=2"));
    }

    #[test]
    fn fault_totals_sum_all_kinds() {
        let c = FaultCounters::new();
        c.bitflips.fetch_add(3, Ordering::Relaxed);
        c.resets.fetch_add(2, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.total(), 5);
        assert!(s.to_string().contains("bitflips=3"));
    }
}
