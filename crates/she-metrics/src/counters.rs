//! Robustness counters for the serving path: lock-free tallies of the
//! events that matter when things go wrong — evicted connections, shed
//! reads, refused connections, and (under `she-chaos`) injected faults.
//!
//! Two families:
//!
//! * [`ServeCounters`] — what the *server* did to protect itself
//!   (evictions, sheds, connection-cap refusals);
//! * [`FaultCounters`] — what a fault injector *did to* the system
//!   (partial I/O, delays, resets, bit flips, file-write faults).
//!
//! Both are plain `AtomicU64` bundles meant to be shared behind an `Arc`
//! and snapshotted for reports; increments use relaxed ordering (counts,
//! not synchronization).

use std::sync::atomic::{AtomicU64, Ordering};

/// Self-protection event counts for a running server.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Connections closed because a started frame (or a pending response)
    /// did not complete within the per-connection deadline.
    pub evicted_conns: AtomicU64,
    /// Read queries rejected with `OVERLOADED` because the target shard
    /// queue was full (reads shed before writes).
    pub shed_reads: AtomicU64,
    /// Connections refused with `OVERLOADED` at the connection cap.
    pub refused_conns: AtomicU64,
}

impl ServeCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump a counter by one (relaxed; these are statistics).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy for reporting.
    pub fn snapshot(&self) -> ServeCountersSnapshot {
        ServeCountersSnapshot {
            evicted_conns: self.evicted_conns.load(Ordering::Relaxed),
            shed_reads: self.shed_reads.load(Ordering::Relaxed),
            refused_conns: self.refused_conns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ServeCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeCountersSnapshot {
    /// See [`ServeCounters::evicted_conns`].
    pub evicted_conns: u64,
    /// See [`ServeCounters::shed_reads`].
    pub shed_reads: u64,
    /// See [`ServeCounters::refused_conns`].
    pub refused_conns: u64,
}

impl std::fmt::Display for ServeCountersSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "evicted={} shed_reads={} refused={}",
            self.evicted_conns, self.shed_reads, self.refused_conns
        )
    }
}

/// Read-path cache statistics: what the two-stage read acceleration
/// (`she-readpath`) did with `QUERY_FAST` traffic. Hits answered from the
/// mark cache; misses recomputed from the fast summary; invalidations are
/// entries dropped because a group time-mark flipped since fill.
#[derive(Debug, Default)]
pub struct ReadpathCounters {
    /// `QUERY_FAST` answers served straight from the mark cache.
    pub hits: AtomicU64,
    /// `QUERY_FAST` answers recomputed from the fast summary.
    pub misses: AtomicU64,
    /// Cache entries written (every miss refills its slot).
    pub fills: AtomicU64,
    /// Cache entries dropped because a relevant time-mark flipped.
    pub invalidations: AtomicU64,
}

impl ReadpathCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump a counter by one (relaxed; these are statistics).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy for reporting.
    pub fn snapshot(&self) -> ReadpathCountersSnapshot {
        ReadpathCountersSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fills: self.fills.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ReadpathCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadpathCountersSnapshot {
    /// See [`ReadpathCounters::hits`].
    pub hits: u64,
    /// See [`ReadpathCounters::misses`].
    pub misses: u64,
    /// See [`ReadpathCounters::fills`].
    pub fills: u64,
    /// See [`ReadpathCounters::invalidations`].
    pub invalidations: u64,
}

impl ReadpathCountersSnapshot {
    /// Fraction of fast reads served from cache (0 when no reads yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

impl std::fmt::Display for ReadpathCountersSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} fills={} invalidations={} hit_rate={:.3}",
            self.hits,
            self.misses,
            self.fills,
            self.invalidations,
            self.hit_rate()
        )
    }
}

/// Injected-fault counts for a fault injector (`she-chaos`).
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Reads/writes deliberately cut short.
    pub partial_io: AtomicU64,
    /// Injected delays.
    pub delays: AtomicU64,
    /// Injected connection resets.
    pub resets: AtomicU64,
    /// Injected single-bit flips.
    pub bitflips: AtomicU64,
    /// Deliveries duplicated (the same bytes handed over twice).
    pub duplicates: AtomicU64,
    /// File writes failed with a simulated full disk.
    pub enospc: AtomicU64,
    /// File writes torn (a prefix written, then failed).
    pub torn_writes: AtomicU64,
}

impl FaultCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A point-in-time copy for reporting.
    pub fn snapshot(&self) -> FaultCountersSnapshot {
        FaultCountersSnapshot {
            partial_io: self.partial_io.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            bitflips: self.bitflips.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            enospc: self.enospc.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`FaultCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCountersSnapshot {
    /// See [`FaultCounters::partial_io`].
    pub partial_io: u64,
    /// See [`FaultCounters::delays`].
    pub delays: u64,
    /// See [`FaultCounters::resets`].
    pub resets: u64,
    /// See [`FaultCounters::bitflips`].
    pub bitflips: u64,
    /// See [`FaultCounters::duplicates`].
    pub duplicates: u64,
    /// See [`FaultCounters::enospc`].
    pub enospc: u64,
    /// See [`FaultCounters::torn_writes`].
    pub torn_writes: u64,
}

impl FaultCountersSnapshot {
    /// Total faults injected, all kinds.
    pub fn total(&self) -> u64 {
        self.partial_io
            + self.delays
            + self.resets
            + self.bitflips
            + self.duplicates
            + self.enospc
            + self.torn_writes
    }
}

impl std::fmt::Display for FaultCountersSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partial={} delays={} resets={} bitflips={} dup={} enospc={} torn={}",
            self.partial_io,
            self.delays,
            self.resets,
            self.bitflips,
            self.duplicates,
            self.enospc,
            self.torn_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_capture_increments() {
        let c = ServeCounters::new();
        ServeCounters::bump(&c.evicted_conns);
        ServeCounters::bump(&c.shed_reads);
        ServeCounters::bump(&c.shed_reads);
        let s = c.snapshot();
        assert_eq!(s.evicted_conns, 1);
        assert_eq!(s.shed_reads, 2);
        assert_eq!(s.refused_conns, 0);
        assert!(s.to_string().contains("shed_reads=2"));
    }

    #[test]
    fn readpath_hit_rate_and_display() {
        let c = ReadpathCounters::new();
        assert_eq!(c.snapshot().hit_rate(), 0.0);
        c.hits.fetch_add(3, Ordering::Relaxed);
        c.misses.fetch_add(1, Ordering::Relaxed);
        ReadpathCounters::bump(&c.invalidations);
        let s = c.snapshot();
        assert_eq!(s.hit_rate(), 0.75);
        assert!(s.to_string().contains("invalidations=1"));
    }

    #[test]
    fn fault_totals_sum_all_kinds() {
        let c = FaultCounters::new();
        c.bitflips.fetch_add(3, Ordering::Relaxed);
        c.resets.fetch_add(2, Ordering::Relaxed);
        c.duplicates.fetch_add(4, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.total(), 9);
        assert!(s.to_string().contains("bitflips=3"));
        assert!(s.to_string().contains("dup=4"));
    }
}
