//! Experiment harness: the metrics and runners behind every figure.
//!
//! §7.1 defines four metrics — FPR (membership), RE (cardinality,
//! similarity), ARE (frequency), and throughput in Mips. This crate
//! provides:
//!
//! * task traits ([`MemberSketch`], [`CardinalitySketch`],
//!   [`FrequencySketch`], [`SimilaritySketch`]) with adapters for every SHE
//!   algorithm, every baseline, and the **Ideal goal** (the fixed-window
//!   original replayed on the exact window contents);
//! * experiment runners ([`membership_fpr`], [`cardinality_re`],
//!   [`frequency_are`], [`similarity_re`], [`throughput_mips`]) that feed a
//!   workload, track exact ground truth, and measure at checkpoints exactly
//!   the way the paper describes (e.g. membership probes are drawn from
//!   keys absent from the last `(1+α)·N` items).

//!
//! For the serving path (`she-server`), the [`latency`] module adds a
//! log-bucket [`LatencyHistogram`] and per-operation [`NetReport`]
//! throughput/latency summaries, and the [`counters`] module adds
//! robustness tallies ([`ServeCounters`] for server self-protection
//! events, [`FaultCounters`] for injected faults under `she-chaos`).

pub mod adapters;
pub mod counters;
pub mod latency;
mod report;
mod runners;

pub use adapters::*;
pub use counters::{
    FaultCounters, FaultCountersSnapshot, ReadpathCounters, ReadpathCountersSnapshot,
    ServeCounters, ServeCountersSnapshot,
};
pub use latency::{LatencyHistogram, NetReport};
pub use report::ResultTable;
pub use runners::*;

/// A sliding-window membership structure under test.
pub trait MemberSketch {
    /// Display name for reports.
    fn name(&self) -> &'static str;
    /// Insert the next item.
    fn insert(&mut self, key: u64);
    /// Is `key` in the window? (`&mut` because SHE queries may clean.)
    fn query(&mut self, key: u64) -> bool;
    /// Memory footprint in bits.
    fn memory_bits(&self) -> usize;
}

/// A sliding-window cardinality estimator under test.
pub trait CardinalitySketch {
    /// Display name for reports.
    fn name(&self) -> &'static str;
    /// Insert the next item.
    fn insert(&mut self, key: u64);
    /// Estimated number of distinct keys in the window.
    fn estimate(&mut self) -> f64;
    /// Memory footprint in bits.
    fn memory_bits(&self) -> usize;
}

/// A sliding-window frequency estimator under test.
pub trait FrequencySketch {
    /// Display name for reports.
    fn name(&self) -> &'static str;
    /// Insert the next item.
    fn insert(&mut self, key: u64);
    /// Estimated frequency of `key` in the window.
    fn query(&mut self, key: u64) -> u64;
    /// Memory footprint in bits.
    fn memory_bits(&self) -> usize;
}

/// A sliding-window similarity estimator under test (owns both streams).
pub trait SimilaritySketch {
    /// Display name for reports.
    fn name(&self) -> &'static str;
    /// Insert the next aligned pair of items.
    fn insert_pair(&mut self, a: u64, b: u64);
    /// Estimated Jaccard similarity of the two windows.
    fn estimate(&mut self) -> f64;
    /// Memory footprint in bits (both signatures).
    fn memory_bits(&self) -> usize;
}
