//! # she-readpath — two-stage read acceleration for the serving tier
//!
//! Writes scale across shards, but every authoritative query still walks
//! the full sketch under a worker queue. This crate answers the hot read
//! mix from a structure that never touches the write path:
//!
//! * **Stage one — [`FastSummary`]**: a read-optimized mirror of the
//!   authoritative sketches, refreshed incrementally from the op stream
//!   (the replication log tail) and read *frozen* — queries never mutate,
//!   so the mirror answers bit-for-bit what the authoritative engines
//!   would on the same insert history — plus a compact
//!   [`SlidingTopK`](she_core::SlidingTopK) ranking summary.
//! * **Stage two — [`MarkCache`]**: a direct-mapped `(op, key)` result
//!   cache validated by SHE **time-mark signatures**. An entry is dropped
//!   only when a group the answer depends on changes observation context
//!   (mark flip or maturity crossing), *not* on every insert — giving a
//!   provable staleness bound of one window sub-group (see
//!   `docs/READPATH.md`).
//!
//! [`ReadPath`] glues the two behind one ranked lock, counts
//! hits/misses/fills/invalidations into
//! [`ReadpathCounters`](she_metrics::ReadpathCounters), and tracks the
//! op-log sequence it has applied so callers can wait for quiescence.

mod cache;
mod fast;

pub use cache::{Lookup, MarkCache};
pub use fast::{Authority, FastSummary};

use she_core::convert::usize_of;
use she_core::{OrderedMutex, SnapshotError};
use she_metrics::ReadpathCounters;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Query-class codes carried by `QUERY_FAST` frames. Membership and
/// frequency match the cluster fan-out codes; top-k is read-path-only
/// (the authoritative tier keeps no ranking).
pub mod op {
    /// Sliding-window membership → packed 0/1.
    pub const MEMBER: u8 = 0;
    /// Sliding-window frequency → count.
    pub const FREQ: u8 = 2;
    /// Top-k heaviest keys; the key field carries `n`.
    pub const TOPK: u8 = 4;
    /// Drop every cached answer (key ignored) → 1. Subsequent asks
    /// refill from the mirror — `she fastcheck` flushes first so its
    /// exactness probes measure fresh fills, not mid-stream residue.
    pub const FLUSH: u8 = 6;
}

/// Sizing for a [`ReadPath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadPathConfig {
    /// Mark-cache slots (rounded up to a power of two).
    pub cache_slots: usize,
    /// How many heavy keys the top-k summary tracks.
    pub topk: usize,
}

impl Default for ReadPathConfig {
    fn default() -> Self {
        Self { cache_slots: 1 << 16, topk: 16 }
    }
}

/// One fast-path answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastAnswer {
    /// Membership verdict.
    Bool(bool),
    /// Frequency estimate.
    Count(u64),
    /// Ranked `(key, estimate)` pairs, heaviest first.
    Ranked(Vec<(u64, u64)>),
}

/// Keys applied per lock acquisition — bounds how long a large op-log
/// record can hold the read lock away from the serving thread.
const APPLY_CHUNK: usize = 1024;

/// Upper bound on a top-k request so a hostile `n` cannot size a reply.
const TOPK_MAX: u64 = 1024;

struct Inner {
    fast: FastSummary,
    cache: MarkCache,
}

/// The serving tier's read accelerator: fast summary + mark cache behind
/// one ranked lock, with hit/miss counters and an applied-sequence
/// watermark.
pub struct ReadPath {
    inner: OrderedMutex<Inner>,
    counters: Arc<ReadpathCounters>,
    /// Highest op-log sequence applied to the fast summary.
    seq: AtomicU64,
}

impl std::fmt::Debug for ReadPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadPath").field("seq", &self.seq).finish_non_exhaustive()
    }
}

impl ReadPath {
    /// Wrap a fast summary with a `cfg`-sized mark cache.
    pub fn new(fast: FastSummary, cfg: ReadPathConfig, counters: Arc<ReadpathCounters>) -> Self {
        Self {
            inner: OrderedMutex::new(
                "readpath",
                Inner { fast, cache: MarkCache::new(cfg.cache_slots) },
            ),
            counters,
            seq: AtomicU64::new(0),
        }
    }

    /// Answer one fast query. `None` means the op code is unknown — the
    /// caller maps that to a protocol error.
    pub fn query(&self, opcode: u8, key: u64) -> Option<FastAnswer> {
        match opcode {
            op::TOPK => {
                let mut g = self.inner.lock();
                Some(FastAnswer::Ranked(g.fast.topk(usize_of(key.min(TOPK_MAX)))))
            }
            op::FLUSH => {
                self.invalidate_all();
                Some(FastAnswer::Bool(true))
            }
            op::MEMBER | op::FREQ => {
                let mut g = self.inner.lock();
                let sig = g.fast.mark_sig(opcode, key);
                match g.cache.lookup(opcode, key, sig) {
                    Lookup::Hit(v) => {
                        ReadpathCounters::bump(&self.counters.hits);
                        Some(unpack(opcode, v))
                    }
                    Lookup::Miss { invalidated } => {
                        if invalidated {
                            ReadpathCounters::bump(&self.counters.invalidations);
                        }
                        ReadpathCounters::bump(&self.counters.misses);
                        let v = match opcode {
                            op::MEMBER => u64::from(g.fast.member(key)),
                            _ => g.fast.frequency(key),
                        };
                        g.cache.fill(opcode, key, sig, v);
                        ReadpathCounters::bump(&self.counters.fills);
                        Some(unpack(opcode, v))
                    }
                }
            }
            _ => None,
        }
    }

    /// Apply one op-stream record to the fast summary, in chunks so a
    /// large batch cannot monopolize the read lock.
    pub fn apply(&self, stream: u8, keys: &[u64]) {
        for chunk in keys.chunks(APPLY_CHUNK) {
            let mut g = self.inner.lock();
            g.fast.apply(stream, chunk);
        }
    }

    /// Record that op-log sequence `seq` (and everything before it) has
    /// been applied to the fast summary.
    pub fn set_seq(&self, seq: u64) {
        self.seq.store(seq, Ordering::Release);
    }

    /// Highest applied op-log sequence — quiescence is `seq() == head`.
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Load one mirrored shard from a snapshot frame (resync or
    /// anti-entropy), dropping every cached answer: the state changed
    /// out from under the signatures.
    pub fn load(&self, shard: usize, frame: &[u8], merge: bool) -> Result<(), SnapshotError> {
        let mut g = self.inner.lock();
        g.fast.load(shard, frame, merge)?;
        g.cache.clear();
        Ok(())
    }

    /// Drop every cached answer (failover, log truncation).
    pub fn invalidate_all(&self) {
        self.inner.lock().cache.clear();
    }

    /// The shared counters this read path reports into.
    pub fn counters(&self) -> &Arc<ReadpathCounters> {
        &self.counters
    }
}

/// Decode a packed cache value into the op's answer shape.
fn unpack(opcode: u8, v: u64) -> FastAnswer {
    if opcode == op::MEMBER {
        FastAnswer::Bool(v != 0)
    } else {
        FastAnswer::Count(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use she_core::{SheBloomFilter, SheCountMin, SlidingTopK};
    use she_hash::{RandomSource, Xoshiro256};
    use she_streams::Zipf;
    use she_window::WindowTruth;

    const WINDOW: u64 = 1 << 10;

    /// Single-shard mirror over real SHE engines — the same shape the
    /// server's sharded mirror has, minus routing.
    struct OneShard {
        bf: SheBloomFilter,
        cm: SheCountMin,
    }

    impl OneShard {
        fn new(seed: u32) -> Self {
            Self {
                bf: SheBloomFilter::builder()
                    .window(WINDOW)
                    .memory_bytes(16 << 10)
                    .alpha(1.5)
                    .seed(seed)
                    .build(),
                cm: SheCountMin::builder().window(WINDOW).memory_bytes(64 << 10).seed(seed).build(),
            }
        }
    }

    impl Authority for OneShard {
        fn apply(&mut self, stream: u8, keys: &[u64]) {
            if stream == 0 {
                for &k in keys {
                    self.bf.insert(&k);
                    self.cm.insert(&k);
                }
            }
        }
        fn member_frozen(&self, key: u64) -> bool {
            self.bf.contains_frozen(&key)
        }
        fn frequency_frozen(&self, key: u64) -> u64 {
            self.cm.query_frozen(&key)
        }
        fn mark_sig(&self, opcode: u8, key: u64) -> u64 {
            if opcode == op::FREQ {
                self.cm.mark_sig(&key)
            } else {
                self.bf.mark_sig(&key)
            }
        }
        fn load(
            &mut self,
            _shard: usize,
            _frame: &[u8],
            _merge: bool,
        ) -> Result<(), SnapshotError> {
            Ok(())
        }
    }

    fn readpath(seed: u32, slots: usize) -> ReadPath {
        let fast = FastSummary::new(
            Box::new(OneShard::new(seed)),
            SlidingTopK::new(16, WINDOW, 64 << 10, seed),
        );
        ReadPath::new(
            fast,
            ReadPathConfig { cache_slots: slots, topk: 16 },
            Arc::new(ReadpathCounters::new()),
        )
    }

    /// Seeded property test for the staleness bound: every cache **hit**
    /// is the fill-time answer and no relevant mark flipped since fill,
    /// so relative to the *current* authoritative answer it can only lag
    /// monotonically (member: cached true stays true; frequency: cached ≤
    /// current). Every **miss** refills and must equal the authoritative
    /// frozen answer bit-for-bit. Invalidations must be observed (the
    /// stream runs across many mark flips).
    #[test]
    fn staleness_bound_holds_under_seeded_stream() {
        let rp = readpath(11, 4096);
        // The authoritative twin: same engines, same insert history.
        // Frozen reads on it answer exactly what the mutating query path
        // would (the she-core equivalence tests), so it stands in for a
        // client hitting the authoritative tier.
        let mut auth = OneShard::new(11);
        let mut rng = Xoshiro256::new(0xFEED);
        let mut batch = Vec::new();
        for round in 0..4_000u64 {
            batch.clear();
            for _ in 0..(1 + rng.next_u64() % 8) {
                batch.push(rng.next_u64() % 700);
            }
            rp.apply(0, &batch);
            auth.apply(0, &batch);
            // Probe a mix of hot and cold keys.
            let probe = if round % 3 == 0 { rng.next_u64() % 700 } else { rng.next_u64() % 4096 };
            for opcode in [op::MEMBER, op::FREQ] {
                let before = rp.counters().snapshot();
                let got = rp.query(opcode, probe).expect("known op");
                let after = rp.counters().snapshot();
                let was_hit = after.hits == before.hits + 1;
                match (opcode, &got) {
                    (op::MEMBER, FastAnswer::Bool(cached)) => {
                        let current = auth.member_frozen(probe);
                        if was_hit {
                            // Bits only get set between mark flips: a
                            // cached positive cannot go stale-positive.
                            assert!(!cached | current, "stale true->false without flip");
                        } else {
                            assert_eq!(*cached, current, "miss must refill bit-for-bit");
                        }
                    }
                    (_, FastAnswer::Count(cached)) => {
                        let current = auth.frequency_frozen(probe);
                        if was_hit {
                            // Counters only grow between mark flips.
                            assert!(*cached <= current, "cached {cached} > current {current}");
                        } else {
                            assert_eq!(*cached, current, "miss must refill bit-for-bit");
                        }
                    }
                    other => panic!("wrong answer shape {other:?}"),
                }
            }
        }
        let s = rp.counters().snapshot();
        assert!(s.hits > 0, "stream never hit the cache: {s}");
        assert!(s.invalidations > 0, "stream never crossed a mark flip: {s}");
        assert_eq!(s.fills, s.misses, "every miss refills");
    }

    /// With the clock frozen (no inserts between fill and re-read), a hit
    /// answers bit-for-bit what the authoritative tier answers — the
    /// quiescence property the serving smoke checks end-to-end.
    #[test]
    fn quiescent_hits_are_bit_for_bit() {
        let rp = readpath(5, 1 << 12);
        let mut auth = OneShard::new(5);
        let keys: Vec<u64> = (0..3 * WINDOW).map(|i| i % 900).collect();
        rp.apply(0, &keys);
        auth.apply(0, &keys);
        for probe in 0..1500u64 {
            let first = rp.query(op::FREQ, probe);
            let second = rp.query(op::FREQ, probe);
            assert_eq!(first, second, "hit must repeat the filled answer");
            assert_eq!(second, Some(FastAnswer::Count(auth.frequency_frozen(probe))));
            let m = rp.query(op::MEMBER, probe);
            assert_eq!(m, Some(FastAnswer::Bool(auth.member_frozen(probe))));
        }
        let s = rp.counters().snapshot();
        assert!(s.hits >= 1500, "second reads must hit: {s}");
        assert_eq!(s.invalidations, 0, "frozen clock cannot invalidate");
    }

    /// FastSummary accuracy against the exact sliding-window oracle:
    /// frequency ARE stays small on a zipfian stream, membership has no
    /// false negatives, and the top-k ranking recovers the true heavy
    /// hitters.
    #[test]
    fn fast_summary_tracks_the_exact_oracle() {
        let rp = readpath(7, 1 << 12);
        let mut truth = WindowTruth::new(usize_of(WINDOW));
        let zipf = Zipf::new(10_000, 1.2);
        let mut rng = Xoshiro256::new(42);
        let mut batch = Vec::new();
        for _ in 0..4 * WINDOW {
            let key = zipf.sample(&mut rng) as u64;
            truth.insert(key);
            batch.push(key);
            if batch.len() == 64 {
                rp.apply(0, &batch);
                batch.clear();
            }
        }
        rp.apply(0, &batch);

        // Frequency: ARE over the oracle's 64 heaviest keys.
        let mut counts: Vec<(u64, u32)> = truth.iter_counts().collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut sum_re = 0.0;
        for &(key, exact) in counts.iter().take(64) {
            let Some(FastAnswer::Count(est)) = rp.query(op::FREQ, key) else {
                panic!("freq answer missing for {key}");
            };
            sum_re += (est as f64 - f64::from(exact)).abs() / f64::from(exact.max(1));
        }
        let are = sum_re / 64.0;
        assert!(are < 0.5, "frequency ARE {are} vs exact oracle");

        // Membership: every in-window key must be reported present.
        for &(key, _) in counts.iter().take(256) {
            assert_eq!(
                rp.query(op::MEMBER, key),
                Some(FastAnswer::Bool(true)),
                "false negative on in-window key {key}"
            );
        }

        // Top-k: at least 6 of the true top-8 appear in the fast top-16.
        let Some(FastAnswer::Ranked(top)) = rp.query(op::TOPK, 16) else {
            panic!("topk answer missing");
        };
        let have = counts.iter().take(8).filter(|(k, _)| top.iter().any(|(tk, _)| tk == k)).count();
        assert!(have >= 6, "top-k recall {have}/8 (got {top:?})");
    }

    #[test]
    fn unknown_op_is_rejected_and_load_invalidates() {
        let rp = readpath(3, 64);
        assert_eq!(rp.query(9, 1), None);
        rp.apply(0, &[1, 2, 3]);
        let _ = rp.query(op::MEMBER, 1);
        let _ = rp.query(op::MEMBER, 1);
        assert!(rp.counters().snapshot().hits > 0);
        rp.set_seq(17);
        assert_eq!(rp.seq(), 17);
        rp.invalidate_all();
        let before = rp.counters().snapshot();
        let _ = rp.query(op::MEMBER, 1);
        let after = rp.counters().snapshot();
        assert_eq!(after.misses, before.misses + 1, "invalidate_all must drop entries");
    }

    #[test]
    fn flush_op_drops_every_cached_answer() {
        let rp = readpath(3, 64);
        rp.apply(0, &[1, 2, 3]);
        let _ = rp.query(op::MEMBER, 1);
        let _ = rp.query(op::FREQ, 2);
        assert_eq!(rp.query(op::FLUSH, 0), Some(FastAnswer::Bool(true)));
        let before = rp.counters().snapshot();
        let _ = rp.query(op::MEMBER, 1);
        let _ = rp.query(op::FREQ, 2);
        let after = rp.counters().snapshot();
        assert_eq!(after.misses, before.misses + 2, "flush must drop every entry");
        assert_eq!(after.hits, before.hits, "nothing should hit right after a flush");
    }
}
