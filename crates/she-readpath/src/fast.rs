//! The fast summary: stage one of the read path.
//!
//! In the SF-sketch spirit (fast sketch synchronized from the slow
//! authoritative one), a [`FastSummary`] bundles an [`Authority`] — a
//! read-optimized mirror of the authoritative sketches, refreshed from the
//! op stream and read **frozen** (never mutated by queries) — with a
//! compact [`SlidingTopK`] ranking summary the authoritative tier does not
//! maintain at all. Membership and frequency answers are bit-for-bit what
//! the authoritative engines would answer on the same insert history (the
//! frozen-read equivalence of `she-core`); top-k answers come from the
//! summary's own scaled Count-Min ranking.

use she_core::{SlidingTopK, SnapshotError};

/// The read path's view of the mirrored authoritative state.
///
/// Implementors hold sketch state fed the *same per-shard key order* as
/// the authoritative engines (op-log order guarantees this) and answer
/// queries with the frozen-read variants, so answers match the
/// authoritative tier bit-for-bit without mutating on reads.
pub trait Authority: Send {
    /// Apply one op-stream record: insert `keys` into stream `stream`
    /// (0 = A, 1 = B), in order.
    fn apply(&mut self, stream: u8, keys: &[u64]);

    /// Frozen sliding-window membership of `key` in stream A.
    fn member_frozen(&self, key: u64) -> bool;

    /// Frozen sliding-window frequency of `key` in stream A.
    fn frequency_frozen(&self, key: u64) -> u64;

    /// Mark signature of the groups `key` hashes to under `op`'s sketch
    /// (see [`she_core::She::mark_sig_of`]). Changes iff a time-mark one
    /// of those groups depends on flips.
    fn mark_sig(&self, op: u8, key: u64) -> u64;

    /// Replace (`merge = false`) or cell-wise merge (`merge = true`) one
    /// mirrored shard from a snapshot frame — the resync/anti-entropy
    /// path. Implementors without snapshot support may no-op.
    fn load(&mut self, shard: usize, frame: &[u8], merge: bool) -> Result<(), SnapshotError>;
}

/// Stage one of the read path: frozen mirror + compact top-k summary.
pub struct FastSummary {
    authority: Box<dyn Authority>,
    topk: SlidingTopK,
}

impl std::fmt::Debug for FastSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastSummary").field("topk", &self.topk).finish_non_exhaustive()
    }
}

impl FastSummary {
    /// Wrap a mirror authority and a ranking summary. The `topk` summary
    /// must be sized to the same window as the authority's sketches; the
    /// caller builds both from one config.
    pub fn new(authority: Box<dyn Authority>, topk: SlidingTopK) -> Self {
        Self { authority, topk }
    }

    /// Apply one op-stream record to both stages. Stream B feeds only the
    /// mirror (the ranking tracks stream A, like the frequency sketch).
    pub fn apply(&mut self, stream: u8, keys: &[u64]) {
        self.authority.apply(stream, keys);
        if stream == 0 {
            for &k in keys {
                self.topk.insert(k);
            }
        }
    }

    /// Frozen membership answer.
    #[inline]
    pub fn member(&self, key: u64) -> bool {
        self.authority.member_frozen(key)
    }

    /// Frozen frequency answer.
    #[inline]
    pub fn frequency(&self, key: u64) -> u64 {
        self.authority.frequency_frozen(key)
    }

    /// Current mark signature for `(op, key)`.
    #[inline]
    pub fn mark_sig(&self, op: u8, key: u64) -> u64 {
        self.authority.mark_sig(op, key)
    }

    /// The `n` heaviest in-window keys with their scaled frequency
    /// estimates, heaviest first (capped at the summary's tracked `k`).
    pub fn topk(&mut self, n: usize) -> Vec<(u64, u64)> {
        let mut top = self.topk.top();
        top.truncate(n);
        top
    }

    /// Load one mirrored shard from a snapshot frame (see
    /// [`Authority::load`]).
    pub fn load(&mut self, shard: usize, frame: &[u8], merge: bool) -> Result<(), SnapshotError> {
        self.authority.load(shard, frame, merge)
    }
}
