//! The mark cache: a direct-mapped query-result cache whose entries are
//! invalidated by time-mark *flips*, not by inserts.
//!
//! Each entry stores the answer to one `(op, key)` query together with the
//! [mark signature](she_core::She::mark_sig_of) of the groups the key
//! hashes to at fill time. A lookup recomputes the current signature and
//! compares: equal means no group the answer depends on has flipped its
//! time-mark since fill, so the cached answer is still *valid* (see the
//! staleness bound in `docs/READPATH.md` — inserts may have raised a
//! counter since fill, but no cleaning the cached answer predates can have
//! happened). A differing signature drops the entry on the spot: that is
//! the "invalidated on the next observation" half of the bound.
//!
//! The table is direct-mapped on purpose: eviction is free (overwrite),
//! memory is a fixed power-of-two slot array, and a collision only costs a
//! recompute — correctness never depends on residency.

use she_core::convert::{u64_of, usize_of};
use she_hash::mix64;

/// One cached answer. `val` packs the answer for the op: membership as
/// 0/1, frequency as the count.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    used: bool,
    op: u8,
    key: u64,
    sig: u64,
    val: u64,
}

/// Outcome of a [`MarkCache::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Entry present and its mark signature still current.
    Hit(u64),
    /// No usable entry. `invalidated` is true when an entry for this exact
    /// `(op, key)` existed but a relevant time-mark flipped since fill.
    Miss {
        /// A stale entry was dropped by this lookup.
        invalidated: bool,
    },
}

/// Direct-mapped `(op, key) → answer` cache with mark-signature
/// validation. Not thread-safe; the owner locks around it.
#[derive(Debug)]
pub struct MarkCache {
    slots: Vec<Slot>,
    mask: u64,
}

impl MarkCache {
    /// A cache with at least `slots` entries (rounded up to a power of
    /// two, minimum 16). Memory is ~26 bytes per slot, fixed at build.
    pub fn new(slots: usize) -> Self {
        let n = slots.next_power_of_two().max(16);
        Self { slots: vec![Slot::default(); n], mask: u64_of(n - 1) }
    }

    /// Slot index for `(op, key)` — one mix over key and op.
    #[inline]
    fn index_of(&self, op: u8, key: u64) -> usize {
        usize_of(mix64(key ^ u64::from(op).rotate_left(56)) & self.mask)
    }

    /// Look up `(op, key)` given the *current* mark signature of the
    /// groups the key hashes to. A signature mismatch drops the entry.
    pub fn lookup(&mut self, op: u8, key: u64, cur_sig: u64) -> Lookup {
        let i = self.index_of(op, key);
        let s = self.slots[i];
        if !s.used || s.op != op || s.key != key {
            return Lookup::Miss { invalidated: false };
        }
        if s.sig != cur_sig {
            self.slots[i].used = false;
            return Lookup::Miss { invalidated: true };
        }
        Lookup::Hit(s.val)
    }

    /// Install (or overwrite) the entry for `(op, key)`.
    pub fn fill(&mut self, op: u8, key: u64, sig: u64, val: u64) {
        let i = self.index_of(op, key);
        self.slots[i] = Slot { used: true, op, key, sig, val };
    }

    /// Drop every entry (state reload, failover resync).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.used = false;
        }
    }

    /// Number of slots in the table.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_hit_same_sig() {
        let mut c = MarkCache::new(64);
        assert_eq!(c.lookup(0, 42, 7), Lookup::Miss { invalidated: false });
        c.fill(0, 42, 7, 1);
        assert_eq!(c.lookup(0, 42, 7), Lookup::Hit(1));
        // Different op is a different entry even for the same key.
        assert_eq!(c.lookup(2, 42, 7), Lookup::Miss { invalidated: false });
    }

    #[test]
    fn sig_change_invalidates_once() {
        let mut c = MarkCache::new(64);
        c.fill(2, 9, 100, 5);
        assert_eq!(c.lookup(2, 9, 101), Lookup::Miss { invalidated: true });
        // The stale entry is gone: the next miss is a plain miss.
        assert_eq!(c.lookup(2, 9, 101), Lookup::Miss { invalidated: false });
    }

    #[test]
    fn rounds_to_power_of_two_and_clears() {
        let mut c = MarkCache::new(100);
        assert_eq!(c.slots(), 128);
        c.fill(0, 1, 1, 1);
        c.clear();
        assert_eq!(c.lookup(0, 1, 1), Lookup::Miss { invalidated: false });
    }
}
