//! Property tests for the fixed-window sketches and the packed cell
//! store, as deterministic seeded loops over randomized cases (same
//! invariants as the original `proptest` suite, reproducible from the
//! fixed seeds).

use she_hash::{RandomSource, Xoshiro256};
use she_sketch::{Bitmap, BloomFilter, CountMin, HyperLogLog, MinHash, PackedArray};

const CASES: u64 = 48;

fn random_keys(rng: &mut Xoshiro256, min_len: usize, max_len: usize) -> Vec<u64> {
    let n = min_len + rng.next_below(max_len - min_len);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// PackedArray behaves exactly like a Vec<u64> model for any cell width
/// and any interleaving of writes.
#[test]
fn packed_array_matches_vec_model() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xFACC ^ case);
        let bits = 1 + rng.next_below(64) as u32;
        let m = 200;
        let mut arr = PackedArray::new(m, bits);
        let mut model = vec![0u64; m];
        let mask = arr.max_value();
        let n_ops = 1 + rng.next_below(299);
        for _ in 0..n_ops {
            let i = rng.next_below(m);
            let v = rng.next_u64();
            arr.set(i, v & mask);
            model[i] = v & mask;
        }
        for (i, &expected) in model.iter().enumerate() {
            assert_eq!(arr.get(i), expected, "case {case}, cell {i}");
        }
        assert_eq!(arr.count_zeros(), model.iter().filter(|&&v| v == 0).count(), "case {case}");
    }
}

/// clear_range only affects the requested span.
#[test]
fn packed_clear_range_is_surgical() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xC1EA ^ case);
        let bits = 1 + rng.next_below(17) as u32;
        let start = rng.next_below(150);
        let len = rng.next_below(50);
        let m = 200;
        let mut arr = PackedArray::new(m, bits);
        let mask = arr.max_value();
        for i in 0..m {
            arr.set(i, (i as u64 + 1) & mask | 1);
        }
        arr.clear_range(start, len.min(m - start));
        for i in 0..m {
            let expect = if i >= start && i < start + len.min(m - start) {
                0
            } else {
                (i as u64 + 1) & mask | 1
            };
            assert_eq!(arr.get(i), expect, "case {case}, i = {i}");
        }
    }
}

/// Bloom filters never produce false negatives, for any key multiset.
#[test]
fn bloom_no_false_negatives() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xB100 ^ case);
        let keys = random_keys(&mut rng, 1, 500);
        let mut bf = BloomFilter::new(1 << 12, 4, 7);
        for k in &keys {
            bf.insert(k);
        }
        for k in &keys {
            assert!(bf.contains(k), "case {case}");
        }
    }
}

/// Count-Min never underestimates, for any key multiset.
#[test]
fn count_min_never_underestimates() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xC096 ^ case);
        let n = 1 + rng.next_below(399);
        let keys: Vec<u64> = (0..n).map(|_| rng.next_below(50) as u64).collect();
        let mut cm = CountMin::new(1 << 10, 32, 4, 3);
        let mut exact = std::collections::HashMap::new();
        for k in &keys {
            cm.insert(k);
            *exact.entry(*k).or_insert(0u64) += 1;
        }
        for (k, c) in exact {
            assert!(cm.query(&k) >= c, "case {case}: key {k} underestimated");
        }
    }
}

/// Bitmap estimates are insertion-order invariant.
#[test]
fn bitmap_order_invariant() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xB17A ^ case);
        let mut keys = random_keys(&mut rng, 1, 300);
        let mut a = Bitmap::new(4096, 1);
        for k in &keys {
            a.insert(k);
        }
        keys.reverse();
        let mut b = Bitmap::new(4096, 1);
        for k in &keys {
            b.insert(k);
        }
        assert_eq!(a.estimate(), b.estimate(), "case {case}");
    }
}

/// HyperLogLog estimates are insertion-order and duplication invariant.
#[test]
fn hll_duplication_invariant() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x4119 ^ case);
        let keys = random_keys(&mut rng, 1, 300);
        let mut a = HyperLogLog::new(256, 5, 2);
        let mut b = HyperLogLog::new(256, 5, 2);
        for k in &keys {
            a.insert(k);
        }
        for k in keys.iter().rev() {
            b.insert(k);
            b.insert(k);
        }
        assert_eq!(a.estimate(), b.estimate(), "case {case}");
    }
}

/// MinHash similarity is symmetric and bounded in [0, 1].
#[test]
fn minhash_symmetric() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x3417 ^ case);
        let ka = random_keys(&mut rng, 1, 200);
        let kb = random_keys(&mut rng, 1, 200);
        let mut a = MinHash::new(64, 9);
        let mut b = MinHash::new(64, 9);
        for k in &ka {
            a.insert(k);
        }
        for k in &kb {
            b.insert(k);
        }
        let ab = a.similarity(&b);
        let ba = b.similarity(&a);
        assert_eq!(ab, ba, "case {case}");
        assert!((0.0..=1.0).contains(&ab), "case {case}");
    }
}

/// MinHash of identical multisets is exactly 1.
#[test]
fn minhash_identity() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x1DE4 ^ case);
        let keys = random_keys(&mut rng, 1, 200);
        let mut a = MinHash::new(64, 9);
        let mut b = MinHash::new(64, 9);
        for k in &keys {
            a.insert(k);
            b.insert(k);
        }
        assert_eq!(a.similarity(&b), 1.0, "case {case}");
    }
}
