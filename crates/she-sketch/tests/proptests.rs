//! Property tests for the fixed-window sketches and the packed cell store.

use proptest::prelude::*;
use she_sketch::{Bitmap, BloomFilter, CountMin, HyperLogLog, MinHash, PackedArray};

proptest! {
    /// PackedArray behaves exactly like a Vec<u64> model for any cell
    /// width and any interleaving of writes.
    #[test]
    fn packed_array_matches_vec_model(
        bits in 1u32..=64,
        ops in prop::collection::vec((0usize..200, any::<u64>()), 1..300),
    ) {
        let m = 200;
        let mut arr = PackedArray::new(m, bits);
        let mut model = vec![0u64; m];
        let mask = arr.max_value();
        for (i, v) in ops {
            arr.set(i, v & mask);
            model[i] = v & mask;
        }
        for (i, &expected) in model.iter().enumerate() {
            prop_assert_eq!(arr.get(i), expected);
        }
        prop_assert_eq!(arr.count_zeros(), model.iter().filter(|&&v| v == 0).count());
    }

    /// clear_range only affects the requested span.
    #[test]
    fn packed_clear_range_is_surgical(
        bits in 1u32..=17,
        start in 0usize..150,
        len in 0usize..50,
    ) {
        let m = 200;
        let mut arr = PackedArray::new(m, bits);
        let mask = arr.max_value();
        for i in 0..m {
            arr.set(i, (i as u64 + 1) & mask | 1);
        }
        arr.clear_range(start, len.min(m - start));
        for i in 0..m {
            let expect = if i >= start && i < start + len.min(m - start) {
                0
            } else {
                (i as u64 + 1) & mask | 1
            };
            prop_assert_eq!(arr.get(i), expect, "i = {}", i);
        }
    }

    /// Bloom filters never produce false negatives, for any key multiset.
    #[test]
    fn bloom_no_false_negatives(keys in prop::collection::vec(any::<u64>(), 1..500)) {
        let mut bf = BloomFilter::new(1 << 12, 4, 7);
        for k in &keys {
            bf.insert(k);
        }
        for k in &keys {
            prop_assert!(bf.contains(k));
        }
    }

    /// Count-Min never underestimates, for any key multiset.
    #[test]
    fn count_min_never_underestimates(keys in prop::collection::vec(0u64..50, 1..400)) {
        let mut cm = CountMin::new(1 << 10, 32, 4, 3);
        let mut exact = std::collections::HashMap::new();
        for k in &keys {
            cm.insert(k);
            *exact.entry(*k).or_insert(0u64) += 1;
        }
        for (k, c) in exact {
            prop_assert!(cm.query(&k) >= c, "key {} underestimated", k);
        }
    }

    /// Bitmap estimates are insertion-order invariant.
    #[test]
    fn bitmap_order_invariant(mut keys in prop::collection::vec(any::<u64>(), 1..300)) {
        let mut a = Bitmap::new(4096, 1);
        for k in &keys {
            a.insert(k);
        }
        keys.reverse();
        let mut b = Bitmap::new(4096, 1);
        for k in &keys {
            b.insert(k);
        }
        prop_assert_eq!(a.estimate(), b.estimate());
    }

    /// HyperLogLog estimates are insertion-order and duplication invariant.
    #[test]
    fn hll_duplication_invariant(keys in prop::collection::vec(any::<u64>(), 1..300)) {
        let mut a = HyperLogLog::new(256, 5, 2);
        let mut b = HyperLogLog::new(256, 5, 2);
        for k in &keys {
            a.insert(k);
        }
        for k in keys.iter().rev() {
            b.insert(k);
            b.insert(k);
        }
        prop_assert_eq!(a.estimate(), b.estimate());
    }

    /// MinHash similarity is symmetric and bounded in [0, 1].
    #[test]
    fn minhash_symmetric(
        ka in prop::collection::vec(any::<u64>(), 1..200),
        kb in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut a = MinHash::new(64, 9);
        let mut b = MinHash::new(64, 9);
        for k in &ka {
            a.insert(k);
        }
        for k in &kb {
            b.insert(k);
        }
        let ab = a.similarity(&b);
        let ba = b.similarity(&a);
        prop_assert_eq!(ab, ba);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    /// MinHash of identical multisets is exactly 1.
    #[test]
    fn minhash_identity(keys in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut a = MinHash::new(64, 9);
        let mut b = MinHash::new(64, 9);
        for k in &keys {
            a.insert(k);
            b.insert(k);
        }
        prop_assert_eq!(a.similarity(&b), 1.0);
    }
}
