//! Bloom filter (Bloom, 1970): `<bit, k, F(x,y)=1>`.

use crate::{CellUpdate, CsmSpec, FixedSketch};
use she_hash::{HashFamily, HashKey};

/// CSM spec for a Bloom filter: an `m`-bit array with `k` hash functions.
#[derive(Debug, Clone)]
pub struct BloomSpec {
    m: usize,
    family: HashFamily,
}

impl BloomSpec {
    /// `m` bits, `k` hash functions, derived from `seed`.
    pub fn new(m: usize, k: usize, seed: u32) -> Self {
        assert!(m > 0 && k > 0);
        Self { m, family: HashFamily::new(k, seed) }
    }

    /// The hash family (shared with SHE-BF's query path).
    #[inline]
    pub fn family(&self) -> &HashFamily {
        &self.family
    }
}

impl CsmSpec for BloomSpec {
    fn name(&self) -> &'static str {
        "bloom"
    }
    fn num_cells(&self) -> usize {
        self.m
    }
    fn cell_bits(&self) -> u32 {
        1
    }
    fn k(&self) -> usize {
        self.family.k()
    }
    fn updates<K: HashKey + ?Sized>(&self, key: &K, out: &mut Vec<CellUpdate>) {
        out.clear();
        key.with_bytes(|b| {
            for i in 0..self.family.k() {
                out.push(CellUpdate { index: self.family.index(i, &b, self.m), operand: 1 });
            }
        });
    }
    fn apply(&self, _operand: u64, _old: u64) -> u64 {
        1
    }
}

/// A classic fixed-window Bloom filter.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    inner: FixedSketch<BloomSpec>,
}

impl BloomFilter {
    /// `m` bits, `k` hash functions.
    pub fn new(m: usize, k: usize, seed: u32) -> Self {
        Self { inner: FixedSketch::new(BloomSpec::new(m, k, seed)) }
    }

    /// Sized from a memory budget in bytes.
    pub fn with_memory(bytes: usize, k: usize, seed: u32) -> Self {
        Self::new((bytes * 8).max(k), k, seed)
    }

    /// Insert an item.
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.inner.insert(key);
    }

    /// Membership query: true iff all `k` hashed bits are set.
    pub fn contains<K: HashKey + ?Sized>(&self, key: &K) -> bool {
        let spec = self.inner.spec();
        let cells = self.inner.cells();
        key.with_bytes(|b| {
            (0..spec.k()).all(|i| cells.get(spec.family().index(i, &b, spec.num_cells())) == 1)
        })
    }

    /// Memory footprint in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.inner.memory_bits()
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Theoretical false-positive rate after `n` distinct insertions:
    /// `(1 - e^{-kn/m})^k`.
    pub fn theoretical_fpr(&self, n: usize) -> f64 {
        let m = self.inner.spec().num_cells() as f64;
        let k = self.inner.spec().k() as f64;
        (1.0 - (-k * n as f64 / m).exp()).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(1 << 14, 4, 1);
        for i in 0..1000u64 {
            bf.insert(&i);
        }
        for i in 0..1000u64 {
            assert!(bf.contains(&i), "false negative on {i}");
        }
    }

    #[test]
    fn fpr_close_to_theory() {
        let mut bf = BloomFilter::new(1 << 14, 4, 7);
        let n = 2000;
        for i in 0..n as u64 {
            bf.insert(&i);
        }
        let mut fp = 0;
        let probes = 20_000;
        for i in 0..probes as u64 {
            if bf.contains(&(i + 1_000_000)) {
                fp += 1;
            }
        }
        let fpr = fp as f64 / probes as f64;
        let theory = bf.theoretical_fpr(n);
        assert!((fpr - theory).abs() < 3.0 * theory.max(0.001), "fpr={fpr} theory={theory}");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bf = BloomFilter::new(1024, 3, 0);
        for i in 0..100u64 {
            assert!(!bf.contains(&i));
        }
    }

    #[test]
    fn clear_empties() {
        let mut bf = BloomFilter::new(1024, 3, 0);
        bf.insert(&5u64);
        assert!(bf.contains(&5u64));
        bf.clear();
        assert!(!bf.contains(&5u64));
    }

    #[test]
    fn memory_sizing() {
        let bf = BloomFilter::with_memory(128, 8, 0);
        assert_eq!(bf.memory_bits(), 1024);
    }
}
