//! Count-Min sketch (Cormode & Muthukrishnan, 2005) in the paper's
//! single-array form: `<counter, k, F(x,y)=y+1>`.
//!
//! Section 2.1 describes CM as *one* `n`-counter array with `k` hash
//! functions (the conjoined variant, like a counting Bloom filter), which is
//! also the form SHE wraps — one cell array that group cleaning can sweep.

use crate::{CellUpdate, CsmSpec, FixedSketch};
use she_hash::{HashFamily, HashKey};

/// CSM spec for the single-array Count-Min: `m` counters of `counter_bits`
/// bits, `k` hash functions.
#[derive(Debug, Clone)]
pub struct CountMinSpec {
    m: usize,
    counter_bits: u32,
    family: HashFamily,
}

impl CountMinSpec {
    /// `m` counters of `counter_bits` bits, `k` hash functions.
    pub fn new(m: usize, counter_bits: u32, k: usize, seed: u32) -> Self {
        assert!(m > 0 && k > 0);
        assert!((2..=64).contains(&counter_bits));
        Self { m, counter_bits, family: HashFamily::new(k, seed) }
    }

    /// The hash family (shared with SHE-CM's query path).
    #[inline]
    pub fn family(&self) -> &HashFamily {
        &self.family
    }
}

impl CsmSpec for CountMinSpec {
    fn name(&self) -> &'static str {
        "count-min"
    }
    fn num_cells(&self) -> usize {
        self.m
    }
    fn cell_bits(&self) -> u32 {
        self.counter_bits
    }
    fn k(&self) -> usize {
        self.family.k()
    }
    fn updates<K: HashKey + ?Sized>(&self, key: &K, out: &mut Vec<CellUpdate>) {
        out.clear();
        key.with_bytes(|b| {
            for i in 0..self.family.k() {
                out.push(CellUpdate { index: self.family.index(i, &b, self.m), operand: 1 });
            }
        });
    }
    fn apply(&self, _operand: u64, old: u64) -> u64 {
        let max = if self.counter_bits == 64 { u64::MAX } else { (1u64 << self.counter_bits) - 1 };
        old.saturating_add(1).min(max)
    }
}

/// A classic fixed-window Count-Min sketch (single-array form).
#[derive(Debug, Clone)]
pub struct CountMin {
    inner: FixedSketch<CountMinSpec>,
}

impl CountMin {
    /// `m` counters of `counter_bits` bits, `k` hash functions.
    pub fn new(m: usize, counter_bits: u32, k: usize, seed: u32) -> Self {
        Self { inner: FixedSketch::new(CountMinSpec::new(m, counter_bits, k, seed)) }
    }

    /// Sized from a memory budget in bytes with 32-bit counters.
    pub fn with_memory(bytes: usize, k: usize, seed: u32) -> Self {
        Self::new(((bytes * 8) / 32).max(k), 32, k, seed)
    }

    /// Insert an item (adds 1 to each hashed counter).
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.inner.insert(key);
    }

    /// Frequency estimate: minimum over the `k` hashed counters.
    ///
    /// Never underestimates (over the fixed window) — collisions only add.
    pub fn query<K: HashKey + ?Sized>(&self, key: &K) -> u64 {
        let spec = self.inner.spec();
        let cells = self.inner.cells();
        key.with_bytes(|b| {
            (0..spec.k())
                .map(|i| cells.get(spec.family().index(i, &b, spec.num_cells())))
                .min()
                .unwrap_or(0)
        })
    }

    /// Memory footprint in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.inner.memory_bits()
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMin::new(1 << 12, 32, 4, 1);
        for i in 0..2000u64 {
            for _ in 0..(i % 5 + 1) {
                cm.insert(&i);
            }
        }
        for i in 0..2000u64 {
            assert!(cm.query(&i) > i % 5, "underestimate for {i}");
        }
    }

    #[test]
    fn exact_when_sparse() {
        let mut cm = CountMin::new(1 << 16, 32, 4, 2);
        for _ in 0..7 {
            cm.insert(&42u64);
        }
        assert_eq!(cm.query(&42u64), 7);
        assert_eq!(cm.query(&43u64), 0);
    }

    #[test]
    fn counters_saturate() {
        let mut cm = CountMin::new(64, 4, 2, 3);
        for _ in 0..100 {
            cm.insert(&1u64);
        }
        assert_eq!(cm.query(&1u64), 15);
    }

    #[test]
    fn memory_sizing() {
        let cm = CountMin::with_memory(1 << 20, 8, 0);
        assert_eq!(cm.memory_bits(), (1 << 20) * 8 / 32 * 32);
    }
}
