//! Count sketch (Charikar, Chen, Farach-Colton 2002):
//! `<counter, k, F(x,y) = y ± 1>`.
//!
//! Not one of the paper's five showcases, but squarely inside the Common
//! Sketch Model — included to demonstrate the framework's genericity (the
//! paper: "a generic framework which can adapt common fixed window
//! algorithms"). Each item adds `sign_i(x)` to counter `h_i(x)`; the query
//! is the median of the sign-corrected counters. Unlike Count-Min the
//! error is two-sided, which exercises SHE's young-cell-inclusive query
//! strategy.

use crate::{CellUpdate, CsmSpec, FixedSketch};
use she_hash::{HashFamily, HashKey};

/// Signed counters are stored as 32-bit two's complement inside the
/// packed cell array.
const CS_CELL_BITS: u32 = 32;

#[inline]
fn to_cell(v: i32) -> u64 {
    v as u32 as u64
}

#[inline]
fn from_cell(c: u64) -> i32 {
    c as u32 as i32
}

/// CSM spec for the count sketch: `m` signed counters, `k` (location,
/// sign) hash pairs.
#[derive(Debug, Clone)]
pub struct CountSketchSpec {
    m: usize,
    locs: HashFamily,
    signs: HashFamily,
}

impl CountSketchSpec {
    /// `m` counters, `k` hash pairs.
    pub fn new(m: usize, k: usize, seed: u32) -> Self {
        assert!(m > 0 && k > 0);
        Self { m, locs: HashFamily::new(k, seed), signs: HashFamily::new(k, seed ^ 0x00C0_FFEE) }
    }

    /// `+1` or `-1` for hash pair `i`.
    #[inline]
    pub fn sign<K: HashKey + ?Sized>(&self, i: usize, key: &K) -> i32 {
        if self.signs.hash(i, key) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Location for hash pair `i`.
    #[inline]
    pub fn location<K: HashKey + ?Sized>(&self, i: usize, key: &K) -> usize {
        self.locs.index(i, key, self.m)
    }
}

impl CsmSpec for CountSketchSpec {
    fn name(&self) -> &'static str {
        "count-sketch"
    }
    fn num_cells(&self) -> usize {
        self.m
    }
    fn cell_bits(&self) -> u32 {
        CS_CELL_BITS
    }
    fn k(&self) -> usize {
        self.locs.k()
    }
    fn updates<K: HashKey + ?Sized>(&self, key: &K, out: &mut Vec<CellUpdate>) {
        out.clear();
        key.with_bytes(|b| {
            for i in 0..self.locs.k() {
                out.push(CellUpdate {
                    index: self.locs.index(i, &b, self.m),
                    // Operand encodes the sign: 1 => +1, 0 => −1.
                    operand: (self.signs.hash(i, &b) & 1) as u64,
                });
            }
        });
    }
    fn apply(&self, operand: u64, old: u64) -> u64 {
        let delta = if operand == 1 { 1i32 } else { -1i32 };
        to_cell(from_cell(old).saturating_add(delta))
    }
}

/// Median of a small value list (the count-sketch combiner).
pub(crate) fn median_i64(vals: &mut [i64]) -> i64 {
    if vals.is_empty() {
        return 0;
    }
    vals.sort_unstable();
    let n = vals.len();
    if n % 2 == 1 {
        vals[n / 2]
    } else {
        (vals[n / 2 - 1] + vals[n / 2]) / 2
    }
}

/// A classic fixed-window count sketch.
#[derive(Debug, Clone)]
pub struct CountSketch {
    inner: FixedSketch<CountSketchSpec>,
}

impl CountSketch {
    /// `m` counters, `k` hash pairs.
    pub fn new(m: usize, k: usize, seed: u32) -> Self {
        Self { inner: FixedSketch::new(CountSketchSpec::new(m, k, seed)) }
    }

    /// Sized from a memory budget in bytes (32-bit counters).
    pub fn with_memory(bytes: usize, k: usize, seed: u32) -> Self {
        Self::new(((bytes * 8) / 32).max(k), k, seed)
    }

    /// Insert an item.
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.inner.insert(key);
    }

    /// Frequency estimate: the median of the sign-corrected counters
    /// (two-sided error, unbiased).
    pub fn query<K: HashKey + ?Sized>(&self, key: &K) -> i64 {
        let spec = self.inner.spec();
        let cells = self.inner.cells();
        let mut vals: Vec<i64> = key.with_bytes(|b| {
            (0..spec.k())
                .map(|i| {
                    let c = from_cell(cells.get(spec.location(i, &b))) as i64;
                    c * spec.sign(i, &b) as i64
                })
                .collect()
        });
        median_i64(&mut vals)
    }

    /// Memory footprint in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.inner.memory_bits()
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_cell_roundtrip() {
        for v in [-5i32, -1, 0, 1, 12345, i32::MIN, i32::MAX] {
            assert_eq!(from_cell(to_cell(v)), v);
        }
    }

    #[test]
    fn median_combiner() {
        assert_eq!(median_i64(&mut [3, 1, 2]), 2);
        assert_eq!(median_i64(&mut [4, 1, 2, 3]), 2);
        assert_eq!(median_i64(&mut []), 0);
        assert_eq!(median_i64(&mut [-7]), -7);
    }

    #[test]
    fn estimates_frequencies_with_low_bias() {
        let mut cs = CountSketch::new(1 << 12, 5, 1);
        for i in 0..2_000u64 {
            for _ in 0..(i % 7 + 1) {
                cs.insert(&i);
            }
        }
        let mut total_err = 0i64;
        for i in 0..2_000u64 {
            let truth = (i % 7 + 1) as i64;
            total_err += (cs.query(&i) - truth).abs();
        }
        // σ per estimate ≈ sqrt(F2/m) ≈ 3; the median of 5 lands around 2.
        let mean_abs = total_err as f64 / 2_000.0;
        assert!(mean_abs < 3.5, "mean absolute error {mean_abs}");
    }

    #[test]
    fn absent_keys_estimate_near_zero() {
        let mut cs = CountSketch::new(1 << 12, 5, 2);
        for i in 0..3_000u64 {
            cs.insert(&i);
        }
        let mut sum = 0i64;
        for i in 0..1_000u64 {
            sum += cs.query(&(i + 1_000_000)).abs();
        }
        assert!(sum < 2_000, "absent-key noise {sum}");
    }

    #[test]
    fn two_sided_errors_occur() {
        // Count sketch (unlike Count-Min) may under-estimate: verify the
        // error really is two-sided on a crowded sketch.
        let mut cs = CountSketch::new(64, 3, 3);
        for i in 0..5_000u64 {
            cs.insert(&i);
        }
        let under = (0..200u64).filter(|k| cs.query(k) < 1).count();
        assert!(under > 0, "expected some under-estimates on a crowded sketch");
    }
}
