//! MinHash (Broder, 1997): `<counter, m, F(x,y)=min(h_i(x), y)>`.
//!
//! `m` hash functions, one minimum tracked per function; the Jaccard
//! similarity of two sets is estimated as the fraction of positions whose
//! minima agree. Per the paper's setup, hash outputs are 24-bit integers.
//!
//! Cell encoding: a cell value of `0` means "empty"; a non-empty cell stores
//! `hash + 1`. This keeps "empty" distinguishable inside SHE's zero-reset
//! group cleaning.

use crate::{CellUpdate, CsmSpec, FixedSketch};
use she_hash::{HashFamily, HashKey};

/// Bits per MinHash cell (24-bit hash outputs + the empty sentinel).
pub const MINHASH_CELL_BITS: u32 = 25;

const HASH_MASK: u32 = (1 << 24) - 1;

/// CSM spec for MinHash: `m` cells, each owned by its own hash function;
/// every insertion updates all `m`.
#[derive(Debug, Clone)]
pub struct MinHashSpec {
    family: HashFamily,
}

impl MinHashSpec {
    /// `m` hash functions / cells, derived from `seed`.
    pub fn new(m: usize, seed: u32) -> Self {
        assert!(m > 0);
        Self { family: HashFamily::new(m, seed) }
    }

    /// The 24-bit hash value of function `i` for `key`.
    #[inline]
    pub fn hash24<K: HashKey + ?Sized>(&self, i: usize, key: &K) -> u32 {
        self.family.hash(i, key) & HASH_MASK
    }
}

impl CsmSpec for MinHashSpec {
    fn name(&self) -> &'static str {
        "minhash"
    }
    fn num_cells(&self) -> usize {
        self.family.k()
    }
    fn cell_bits(&self) -> u32 {
        MINHASH_CELL_BITS
    }
    fn k(&self) -> usize {
        self.family.k()
    }
    fn updates<K: HashKey + ?Sized>(&self, key: &K, out: &mut Vec<CellUpdate>) {
        out.clear();
        key.with_bytes(|b| {
            for i in 0..self.family.k() {
                out.push(CellUpdate {
                    index: i,
                    operand: (self.family.hash(i, &b) & HASH_MASK) as u64 + 1,
                });
            }
        });
    }
    fn apply(&self, operand: u64, old: u64) -> u64 {
        if old == 0 {
            operand
        } else {
            operand.min(old)
        }
    }
}

/// A classic fixed-window MinHash signature.
#[derive(Debug, Clone)]
pub struct MinHash {
    inner: FixedSketch<MinHashSpec>,
}

impl MinHash {
    /// `m` hash functions. Two signatures meant to be compared must share
    /// the same `seed`.
    pub fn new(m: usize, seed: u32) -> Self {
        Self { inner: FixedSketch::new(MinHashSpec::new(m, seed)) }
    }

    /// Sized from a memory budget in bytes.
    pub fn with_memory(bytes: usize, seed: u32) -> Self {
        Self::new(((bytes * 8) / MINHASH_CELL_BITS as usize).max(1), seed)
    }

    /// Insert an item into the signature.
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.inner.insert(key);
    }

    /// Estimated Jaccard similarity with `other`: the fraction of positions
    /// whose minima agree (positions empty on both sides are skipped).
    pub fn similarity(&self, other: &MinHash) -> f64 {
        let m = self.inner.spec().num_cells();
        assert_eq!(m, other.inner.spec().num_cells(), "signature sizes differ");
        let mut used = 0usize;
        let mut matches = 0usize;
        for i in 0..m {
            let a = self.inner.cells().get(i);
            let b = other.inner.cells().get(i);
            if a == 0 && b == 0 {
                continue;
            }
            used += 1;
            if a == b {
                matches += 1;
            }
        }
        if used == 0 {
            0.0
        } else {
            matches as f64 / used as f64
        }
    }

    /// Number of hash functions / cells.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.inner.spec().num_cells()
    }

    /// Memory footprint in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.inner.memory_bits()
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jaccard_streams(m: usize, shared: u64, only_a: u64, only_b: u64) -> (f64, f64) {
        let mut a = MinHash::new(m, 7);
        let mut b = MinHash::new(m, 7);
        for i in 0..shared {
            a.insert(&i);
            b.insert(&i);
        }
        for i in 0..only_a {
            a.insert(&(1_000_000 + i));
        }
        for i in 0..only_b {
            b.insert(&(2_000_000 + i));
        }
        let truth = shared as f64 / (shared + only_a + only_b) as f64;
        (a.similarity(&b), truth)
    }

    #[test]
    fn identical_sets_have_similarity_one() {
        let (est, truth) = jaccard_streams(128, 5000, 0, 0);
        assert_eq!(truth, 1.0);
        assert_eq!(est, 1.0);
    }

    #[test]
    fn disjoint_sets_have_similarity_near_zero() {
        let (est, _) = jaccard_streams(256, 0, 5000, 5000);
        assert!(est < 0.05, "estimate {est}");
    }

    #[test]
    fn half_overlap() {
        let (est, truth) = jaccard_streams(512, 4000, 2000, 2000);
        assert!((est - truth).abs() < 0.08, "estimate {est} truth {truth}");
    }

    #[test]
    fn empty_signatures_similarity_zero() {
        let a = MinHash::new(64, 0);
        let b = MinHash::new(64, 0);
        assert_eq!(a.similarity(&b), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_panic() {
        let a = MinHash::new(64, 0);
        let b = MinHash::new(32, 0);
        let _ = a.similarity(&b);
    }

    #[test]
    fn order_and_duplicates_do_not_matter() {
        let mut a = MinHash::new(128, 3);
        let mut b = MinHash::new(128, 3);
        for i in 0..1000u64 {
            a.insert(&i);
        }
        for i in (0..1000u64).rev() {
            b.insert(&i);
            b.insert(&i);
        }
        assert_eq!(a.similarity(&b), 1.0);
    }

    #[test]
    fn memory_sizing() {
        let mh = MinHash::with_memory(1000, 0);
        assert_eq!(mh.num_hashes(), 8000 / MINHASH_CELL_BITS as usize);
    }
}
