//! HyperLogLog (Flajolet et al., 2007): `<counter, 1, F(x,y)=max(rank, y)>`.
//!
//! Registers store the rank `ρ = 1 + leading-zeros` of a 32-bit hash, as in
//! the paper's C++ release (32-bit `Hz`, 5-bit registers). The estimator uses
//! the standard bias constant plus the small-range linear-counting
//! correction; SHE-HLL reuses [`hll_estimate_subset`] to estimate from only
//! the age-legal registers and scale back up to the full array.

use crate::{CellUpdate, CsmSpec, FixedSketch};
use she_hash::{rank_of, HashFamily, HashKey};

/// The HyperLogLog bias-correction constant `α_m`.
pub fn hll_alpha(m: usize) -> f64 {
    match m {
        0..=16 => 0.673,
        17..=32 => 0.697,
        33..=64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// Raw-estimate + linear-counting correction over an arbitrary register
/// subset.
///
/// `registers` are the observed register values (rank, 0 = empty) of `k`
/// registers sampled from an array of `m_total`; the returned estimate is
/// for the full array (i.e. scaled by `m_total / k`). With `k == m_total`
/// this is the classic HLL estimator.
pub fn hll_estimate_subset(registers: impl Iterator<Item = u64>, m_total: usize) -> f64 {
    let mut k = 0usize;
    let mut zeros = 0usize;
    let mut sum = 0.0f64;
    for r in registers {
        k += 1;
        if r == 0 {
            zeros += 1;
        }
        sum += 2.0f64.powi(-(r as i32));
    }
    if k == 0 {
        return 0.0;
    }
    // Raw estimate for the k-register sample, scaled to the full array:
    // α_k · k · m_total / Σ 2^{-ρ_j}  (the paper's Ĉ = c·k·(Σ2^{-ℓj})^{-1}·M).
    let raw = hll_alpha(k) * k as f64 * m_total as f64 / sum;
    // Small-range correction: within the sample, linear counting.
    let small_threshold = 2.5 * k as f64 * (m_total as f64 / k as f64);
    if raw <= small_threshold && zeros > 0 {
        let lc = (k as f64) * (k as f64 / zeros as f64).ln();
        return lc * m_total as f64 / k as f64;
    }
    raw
}

/// CSM spec for HyperLogLog: `m` registers of `reg_bits` bits.
#[derive(Debug, Clone)]
pub struct HllSpec {
    m: usize,
    reg_bits: u32,
    hc: HashFamily,
    hz: HashFamily,
}

impl HllSpec {
    /// `m` registers of `reg_bits` bits (the paper uses 5), seeds derived
    /// from `seed`.
    pub fn new(m: usize, reg_bits: u32, seed: u32) -> Self {
        assert!(m > 0);
        assert!((4..=8).contains(&reg_bits), "HLL registers are 4..=8 bits");
        Self {
            m,
            reg_bits,
            hc: HashFamily::new(1, seed),
            hz: HashFamily::new(1, seed ^ 0x5bd1_e995),
        }
    }

    /// Register-index hash (shared with SHE-HLL).
    #[inline]
    pub fn hc(&self) -> &HashFamily {
        &self.hc
    }

    /// The rank operand for `key`: `ρ(Hz(key))` capped to the register width.
    #[inline]
    pub fn rank<K: HashKey + ?Sized>(&self, key: &K) -> u64 {
        let max = (1u64 << self.reg_bits) - 1;
        (rank_of(self.hz.hash(0, key) as u64, 32) as u64).min(max)
    }
}

impl CsmSpec for HllSpec {
    fn name(&self) -> &'static str {
        "hyperloglog"
    }
    fn num_cells(&self) -> usize {
        self.m
    }
    fn cell_bits(&self) -> u32 {
        self.reg_bits
    }
    fn k(&self) -> usize {
        1
    }
    fn updates<K: HashKey + ?Sized>(&self, key: &K, out: &mut Vec<CellUpdate>) {
        out.clear();
        out.push(CellUpdate { index: self.hc.index(0, key, self.m), operand: self.rank(key) });
    }
    fn apply(&self, operand: u64, old: u64) -> u64 {
        operand.max(old)
    }
}

/// A classic fixed-window HyperLogLog.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    inner: FixedSketch<HllSpec>,
}

impl HyperLogLog {
    /// `m` registers of `reg_bits` bits.
    pub fn new(m: usize, reg_bits: u32, seed: u32) -> Self {
        Self { inner: FixedSketch::new(HllSpec::new(m, reg_bits, seed)) }
    }

    /// Sized from a memory budget in bytes (5-bit registers as in the paper).
    pub fn with_memory(bytes: usize, seed: u32) -> Self {
        Self::new(((bytes * 8) / 5).max(16), 5, seed)
    }

    /// Insert an item.
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.inner.insert(key);
    }

    /// Cardinality estimate with bias and small-range corrections.
    pub fn estimate(&self) -> f64 {
        hll_estimate_subset(self.inner.cells().iter(), self.inner.spec().num_cells())
    }

    /// Memory footprint in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.inner.memory_bits()
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_large_cardinality() {
        let mut hll = HyperLogLog::new(1 << 12, 5, 1);
        let c = 200_000u64;
        for i in 0..c {
            hll.insert(&i);
            if i % 3 == 0 {
                hll.insert(&i); // duplicates are free
            }
        }
        let est = hll.estimate();
        let re = (est - c as f64).abs() / c as f64;
        // Theoretical σ ≈ 1.04/sqrt(4096) ≈ 1.6%; allow 4σ.
        assert!(re < 0.07, "estimate {est}, relative error {re}");
    }

    #[test]
    fn small_range_correction_kicks_in() {
        let mut hll = HyperLogLog::new(1 << 10, 5, 2);
        let c = 100u64;
        for i in 0..c {
            hll.insert(&i);
        }
        let est = hll.estimate();
        let re = (est - c as f64).abs() / c as f64;
        assert!(re < 0.15, "estimate {est}, relative error {re}");
    }

    #[test]
    fn empty_estimates_zero() {
        assert_eq!(HyperLogLog::new(256, 5, 0).estimate(), 0.0);
    }

    #[test]
    fn subset_estimator_full_equals_classic() {
        // With the full register set, the subset estimator is the classic
        // HLL estimate — sanity-check scaling factors cancel.
        let mut hll = HyperLogLog::new(512, 6, 3);
        for i in 0..50_000u64 {
            hll.insert(&i);
        }
        let full = hll.estimate();
        let via_subset = hll_estimate_subset(hll.inner.cells().iter(), 512);
        assert_eq!(full, via_subset);
    }

    #[test]
    fn subset_estimator_half_sample_is_close() {
        let mut hll = HyperLogLog::new(1 << 12, 5, 4);
        let c = 300_000u64;
        for i in 0..c {
            hll.insert(&i);
        }
        // Estimate from only the even registers, scaled back to 4096.
        let regs: Vec<u64> =
            (0..1 << 12).filter(|i| i % 2 == 0).map(|i| hll.inner.cells().get(i)).collect();
        let est = hll_estimate_subset(regs.into_iter(), 1 << 12);
        let re = (est - c as f64).abs() / c as f64;
        assert!(re < 0.12, "estimate {est}, relative error {re}");
    }

    #[test]
    fn alpha_constants() {
        assert_eq!(hll_alpha(16), 0.673);
        assert_eq!(hll_alpha(32), 0.697);
        assert_eq!(hll_alpha(64), 0.709);
        assert!((hll_alpha(4096) - 0.7213 / (1.0 + 1.079 / 4096.0)).abs() < 1e-12);
    }

    #[test]
    fn rank_caps_at_register_width() {
        let spec = HllSpec::new(16, 5, 0);
        for i in 0..10_000u64 {
            assert!(spec.rank(&i) <= 31);
        }
    }
}
