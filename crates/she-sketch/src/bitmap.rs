//! Linear-counting Bitmap (Whang et al., 1990): `<bit, 1, F(x,y)=1>`.

use crate::{bitmap_mle, CellUpdate, CsmSpec, FixedSketch};
use she_hash::{HashFamily, HashKey};

/// CSM spec for the Bitmap: `m` bits, one hash function.
#[derive(Debug, Clone)]
pub struct BitmapSpec {
    m: usize,
    family: HashFamily,
}

impl BitmapSpec {
    /// `m` bits hashed by a single function derived from `seed`.
    pub fn new(m: usize, seed: u32) -> Self {
        assert!(m > 0);
        Self { m, family: HashFamily::new(1, seed) }
    }

    /// The single-function hash family (shared with SHE-BM).
    #[inline]
    pub fn family(&self) -> &HashFamily {
        &self.family
    }
}

impl CsmSpec for BitmapSpec {
    fn name(&self) -> &'static str {
        "bitmap"
    }
    fn num_cells(&self) -> usize {
        self.m
    }
    fn cell_bits(&self) -> u32 {
        1
    }
    fn k(&self) -> usize {
        1
    }
    fn updates<K: HashKey + ?Sized>(&self, key: &K, out: &mut Vec<CellUpdate>) {
        out.clear();
        out.push(CellUpdate { index: self.family.index(0, key, self.m), operand: 1 });
    }
    fn apply(&self, _operand: u64, _old: u64) -> u64 {
        1
    }
}

/// A classic fixed-window linear-counting bitmap.
#[derive(Debug, Clone)]
pub struct Bitmap {
    inner: FixedSketch<BitmapSpec>,
}

impl Bitmap {
    /// `m` bits.
    pub fn new(m: usize, seed: u32) -> Self {
        Self { inner: FixedSketch::new(BitmapSpec::new(m, seed)) }
    }

    /// Sized from a memory budget in bytes.
    pub fn with_memory(bytes: usize, seed: u32) -> Self {
        Self::new((bytes * 8).max(1), seed)
    }

    /// Insert an item.
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.inner.insert(key);
    }

    /// Maximum-likelihood cardinality estimate `-m ln(u/m)`.
    pub fn estimate(&self) -> f64 {
        bitmap_mle(self.inner.cells().count_zeros(), self.inner.spec().num_cells())
    }

    /// Memory footprint in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.inner.memory_bits()
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_cardinality() {
        let mut bm = Bitmap::new(1 << 16, 3);
        let c = 10_000u64;
        for i in 0..c {
            bm.insert(&i);
            bm.insert(&i); // duplicates must not inflate the estimate
        }
        let est = bm.estimate();
        let re = (est - c as f64).abs() / c as f64;
        assert!(re < 0.05, "estimate {est}, relative error {re}");
    }

    #[test]
    fn empty_estimates_zero() {
        assert_eq!(Bitmap::new(1024, 0).estimate(), 0.0);
    }

    #[test]
    fn clear_resets_estimate() {
        let mut bm = Bitmap::new(4096, 0);
        for i in 0..500u64 {
            bm.insert(&i);
        }
        assert!(bm.estimate() > 0.0);
        bm.clear();
        assert_eq!(bm.estimate(), 0.0);
    }

    #[test]
    fn memory_sizing() {
        assert_eq!(Bitmap::with_memory(2, 0).memory_bits(), 16);
    }
}
