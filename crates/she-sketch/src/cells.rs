//! Packed cell storage.
//!
//! All sketches in this workspace store their state in a [`PackedArray`]:
//! `m` cells of `bits` bits each, packed into `u64` words. This mirrors the
//! paper's memory accounting (a 1 KB Bloom filter really is 8192 bits) and
//! gives SHE's group cleaning a natural word-aligned reset path.

/// A dense array of `m` fixed-width cells (1..=64 bits each).
///
/// Cells may straddle word boundaries; `get`/`set` handle the split. For the
/// common power-of-two widths cells never straddle, and the compiler folds
/// the straddle branch away after inlining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedArray {
    words: Vec<u64>,
    m: usize,
    bits: u32,
}

impl PackedArray {
    /// Create an array of `m` zeroed cells of `bits` bits each.
    pub fn new(m: usize, bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "cell width must be 1..=64 bits");
        assert!(m > 0, "cell array must be non-empty");
        let total_bits = m.checked_mul(bits as usize).expect("cell array size overflows");
        let words = vec![0u64; total_bits.div_ceil(64)];
        Self { words, m, bits }
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.m
    }

    /// True when the array holds no cells (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Bits per cell.
    #[inline]
    pub fn cell_bits(&self) -> u32 {
        self.bits
    }

    /// Total memory footprint of the cell payload in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.m * self.bits as usize
    }

    /// The largest value a cell can hold.
    #[inline]
    pub fn max_value(&self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Read cell `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.m, "cell index {i} out of bounds ({})", self.m);
        let bit = i * self.bits as usize;
        let (w, off) = (bit / 64, (bit % 64) as u32);
        let mask = self.max_value();
        if off + self.bits <= 64 {
            (self.words[w] >> off) & mask
        } else {
            let lo = self.words[w] >> off;
            let hi = self.words[w + 1] << (64 - off);
            (lo | hi) & mask
        }
    }

    /// Write cell `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: u64) {
        assert!(i < self.m, "cell index {i} out of bounds ({})", self.m);
        let mask = self.max_value();
        debug_assert!(v <= mask, "value {v} does not fit in {} bits", self.bits);
        let v = v & mask;
        let bit = i * self.bits as usize;
        let (w, off) = (bit / 64, (bit % 64) as u32);
        if off + self.bits <= 64 {
            self.words[w] = (self.words[w] & !(mask << off)) | (v << off);
        } else {
            let lo_bits = 64 - off;
            self.words[w] = (self.words[w] & !(mask << off)) | (v << off);
            let hi_mask = mask >> lo_bits;
            self.words[w + 1] = (self.words[w + 1] & !hi_mask) | (v >> lo_bits);
        }
    }

    /// Zero the cells in `[start, start + count)`.
    ///
    /// This is SHE's group reset: when a group's time mark flips, every cell
    /// in the group is cleared in one bounded-width memory touch.
    pub fn clear_range(&mut self, start: usize, count: usize) {
        assert!(start + count <= self.m, "clear range out of bounds");
        for i in start..start + count {
            self.set(i, 0);
        }
    }

    /// Zero every cell.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Count cells equal to zero in `[start, start + count)`.
    pub fn count_zeros_in(&self, start: usize, count: usize) -> usize {
        assert!(start + count <= self.m, "count range out of bounds");
        (start..start + count).filter(|&i| self.get(i) == 0).count()
    }

    /// Count cells equal to zero in the whole array.
    pub fn count_zeros(&self) -> usize {
        self.count_zeros_in(0, self.m)
    }

    /// Iterate over all cell values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.m).map(move |i| self.get(i))
    }

    /// The raw backing words (snapshot support).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrite the backing words from a snapshot of the same geometry.
    pub fn copy_from_words(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.words.len(), "snapshot geometry mismatch");
        self.words.copy_from_slice(words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for bits in [1u32, 3, 5, 8, 13, 24, 32, 63, 64] {
            let m = 100;
            let mut a = PackedArray::new(m, bits);
            let mask = a.max_value();
            for i in 0..m {
                let v = (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)) & mask;
                a.set(i, v);
            }
            for i in 0..m {
                let v = (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)) & mask;
                assert_eq!(a.get(i), v, "bits={bits} i={i}");
            }
        }
    }

    #[test]
    fn neighbors_are_independent() {
        // Writing one cell must not disturb its neighbors, including across
        // word boundaries (5-bit cells straddle every 64/5 cells).
        let mut a = PackedArray::new(64, 5);
        for i in 0..64 {
            a.set(i, 0b10101);
        }
        a.set(12, 0);
        for i in 0..64 {
            assert_eq!(a.get(i), if i == 12 { 0 } else { 0b10101 });
        }
    }

    #[test]
    fn clear_range_is_exact() {
        let mut a = PackedArray::new(256, 3);
        for i in 0..256 {
            a.set(i, 0b111);
        }
        a.clear_range(64, 64);
        for i in 0..256 {
            let expect = if (64..128).contains(&i) { 0 } else { 0b111 };
            assert_eq!(a.get(i), expect, "i={i}");
        }
        assert_eq!(a.count_zeros(), 64);
        assert_eq!(a.count_zeros_in(64, 64), 64);
        assert_eq!(a.count_zeros_in(0, 64), 0);
    }

    #[test]
    fn memory_accounting() {
        let a = PackedArray::new(8192, 1);
        assert_eq!(a.memory_bits(), 8192);
        let b = PackedArray::new(100, 5);
        assert_eq!(b.memory_bits(), 500);
        assert_eq!(b.cell_bits(), 5);
        assert_eq!(b.len(), 100);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic]
    fn oob_get_panics() {
        let a = PackedArray::new(10, 4);
        let _ = a.get(10);
    }

    #[test]
    fn max_value_widths() {
        assert_eq!(PackedArray::new(1, 1).max_value(), 1);
        assert_eq!(PackedArray::new(1, 5).max_value(), 31);
        assert_eq!(PackedArray::new(1, 64).max_value(), u64::MAX);
    }

    #[test]
    fn full_width_straddle_roundtrip() {
        // 33-bit cells force straddles with large values.
        let mut a = PackedArray::new(77, 33);
        let mask = a.max_value();
        for i in 0..77 {
            a.set(i, (u64::MAX - i as u64) & mask);
        }
        for i in 0..77 {
            assert_eq!(a.get(i), (u64::MAX - i as u64) & mask);
        }
    }
}
