//! The Common Sketch Model: the `<C, K, F>` triple of Section 3.1.
//!
//! A [`CsmSpec`] describes a fixed-window algorithm entirely through:
//!
//! * the number and width of its cells (`C`),
//! * the hashed locations an item maps to (`K`), and
//! * the update function merging an item into a cell (`F`).
//!
//! Insertion is then algorithm-independent ([`FixedSketch::insert`]), and the
//! SHE framework reuses the *same* spec for its sliding-window engine — this
//! is what makes SHE "generic" in the paper's sense.

use crate::PackedArray;
use she_hash::HashKey;

/// One hashed location plus the operand `F` needs there.
///
/// For a Bloom filter the operand is ignored (`F(x, y) = 1`); for
/// HyperLogLog it is the rank of `Hz(x)`; for MinHash it is the per-function
/// hash value whose minimum the cell tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellUpdate {
    /// Index of the hashed cell.
    pub index: usize,
    /// Operand handed to [`CsmSpec::apply`].
    pub operand: u64,
}

impl CellUpdate {
    /// The time-mark group owning this cell when the array is split into
    /// groups of `group_cells` cells — the unit whose mark a sliding
    /// engine observes. Exposed at the CSM layer so read paths can map
    /// hashed locations to groups without reaching into engine state.
    #[inline]
    pub fn group(&self, group_cells: usize) -> usize {
        self.index / group_cells.max(1)
    }
}

/// A fixed-window algorithm expressed as the paper's `<C, K, F>` triple.
pub trait CsmSpec {
    /// Human-readable algorithm name (used by the experiment harness).
    fn name(&self) -> &'static str;

    /// `M`: number of cells in the data structure.
    fn num_cells(&self) -> usize;

    /// Bit width of one cell (the `C` in `<C, K, F>`: 1 for bits, wider for
    /// counters).
    fn cell_bits(&self) -> u32;

    /// `K`: how many cells one insertion touches.
    fn k(&self) -> usize;

    /// Compute the hashed locations (and update operands) for `key`.
    ///
    /// Pushes exactly [`CsmSpec::k`] entries into `out` (which is cleared
    /// first). Reusing the caller's buffer keeps the insertion path
    /// allocation-free.
    fn updates<K: HashKey + ?Sized>(&self, key: &K, out: &mut Vec<CellUpdate>);

    /// `F(x, y)`: merge `operand` into the old cell value `old`.
    ///
    /// Must be idempotent-safe under SHE's re-insertion semantics (applying
    /// the same update twice gives the same cell value as applying it once)
    /// for one-sided-error algorithms; Count-Min deliberately is not, being
    /// a counter.
    fn apply(&self, operand: u64, old: u64) -> u64;
}

/// The generic fixed-window engine: a [`PackedArray`] driven by a spec.
///
/// This is the "original algorithm" of the paper. Query logic lives on the
/// concrete wrappers (e.g. [`crate::BloomFilter::contains`]) because each
/// task reads the cells differently.
#[derive(Debug, Clone)]
pub struct FixedSketch<S: CsmSpec> {
    spec: S,
    cells: PackedArray,
    scratch: Vec<CellUpdate>,
}

impl<S: CsmSpec> FixedSketch<S> {
    /// Build an empty sketch from its spec.
    pub fn new(spec: S) -> Self {
        let cells = PackedArray::new(spec.num_cells(), spec.cell_bits());
        let scratch = Vec::with_capacity(spec.k());
        Self { spec, cells, scratch }
    }

    /// The spec driving this sketch.
    #[inline]
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// Read access to the raw cells.
    #[inline]
    pub fn cells(&self) -> &PackedArray {
        &self.cells
    }

    /// Mutable access to the raw cells (used by tests and the Ideal replay).
    #[inline]
    pub fn cells_mut(&mut self) -> &mut PackedArray {
        &mut self.cells
    }

    /// Memory footprint in bits (cells only; fixed-window sketches carry no
    /// auxiliary state).
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.cells.memory_bits()
    }

    /// Insert one item: update all `K` hashed cells with `F`.
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.spec.updates(key, &mut scratch);
        for u in &scratch {
            let old = self.cells.get(u.index);
            self.cells.set(u.index, self.spec.apply(u.operand, old));
        }
        self.scratch = scratch;
    }

    /// Reset to the empty state.
    pub fn clear(&mut self) {
        self.cells.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy spec: 8-bit saturating counters, single hash.
    struct Toy {
        m: usize,
    }

    impl CsmSpec for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn num_cells(&self) -> usize {
            self.m
        }
        fn cell_bits(&self) -> u32 {
            8
        }
        fn k(&self) -> usize {
            1
        }
        fn updates<K: HashKey + ?Sized>(&self, key: &K, out: &mut Vec<CellUpdate>) {
            out.clear();
            let h = key.with_bytes(|b| she_hash::Bob32::new(0).hash(b));
            out.push(CellUpdate { index: h as usize % self.m, operand: 0 });
        }
        fn apply(&self, _operand: u64, old: u64) -> u64 {
            (old + 1).min(255)
        }
    }

    #[test]
    fn generic_insert_applies_f() {
        let mut s = FixedSketch::new(Toy { m: 16 });
        for _ in 0..5 {
            s.insert(&42u64);
        }
        let mut upd = Vec::new();
        s.spec().updates(&42u64, &mut upd);
        assert_eq!(s.cells().get(upd[0].index), 5);
        assert_eq!(s.memory_bits(), 16 * 8);
        s.clear();
        assert_eq!(s.cells().count_zeros(), 16);
    }

    #[test]
    fn saturation() {
        let mut s = FixedSketch::new(Toy { m: 1 });
        for _ in 0..1000 {
            s.insert(&1u64);
        }
        assert_eq!(s.cells().get(0), 255);
    }
}
