//! Fixed-window sketch algorithms under the paper's Common Sketch Model.
//!
//! Section 3.1 of the SHE paper characterizes a fixed-window algorithm as a
//! triple `<C, K, F>`: a cell type (bit or counter), a number of hashed
//! locations, and an update function applied independently to each hashed
//! cell. This crate provides:
//!
//! * [`PackedArray`] — a cell store with an arbitrary bit width per cell
//!   (1 bit for Bloom/Bitmap, 5–8 bits for HyperLogLog registers, 24/32 bits
//!   for MinHash values and Count-Min counters);
//! * the [`CsmSpec`] trait — a direct encoding of `<C, K, F>`;
//! * [`FixedSketch`] — the generic fixed-window engine driven by a spec;
//! * the five concrete algorithms the paper enhances:
//!   [`BloomFilter`], [`Bitmap`], [`HyperLogLog`], [`CountMin`], [`MinHash`].
//!
//! The concrete types double as the **Ideal goal** of the evaluation: feeding
//! exactly the items of a window into a fresh fixed-window sketch gives the
//! accuracy SHE aspires to match.

mod bitmap;
mod bloom;
mod cells;
mod cm;
mod count_sketch;
mod csm;
mod hll;
mod minhash;

pub use bitmap::{Bitmap, BitmapSpec};
pub use bloom::{BloomFilter, BloomSpec};
pub use cells::PackedArray;
pub use cm::{CountMin, CountMinSpec};
pub use count_sketch::{CountSketch, CountSketchSpec};
pub use csm::{CellUpdate, CsmSpec, FixedSketch};
pub use hll::{hll_alpha, hll_estimate_subset, HllSpec, HyperLogLog};
pub use minhash::{MinHash, MinHashSpec, MINHASH_CELL_BITS};

/// Estimate cardinality from a bitmap observation by maximum likelihood:
/// `-n * ln(u / n)` for `u` zero bits out of `n` (Whang et al.).
///
/// Returns 0 for an all-zero... rather: an untouched bitmap (`zeros == n`)
/// estimates 0; a saturated bitmap (`zeros == 0`) clamps to the last
/// resolvable point `n * ln(n)`.
pub fn bitmap_mle(zeros: usize, n: usize) -> f64 {
    assert!(n > 0, "bitmap must have at least one bit");
    assert!(zeros <= n, "cannot observe more zeros than bits");
    if zeros == n {
        return 0.0;
    }
    let u = zeros.max(1) as f64; // saturated bitmap: clamp to the last resolvable point
    -(n as f64) * (u / n as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_mle_boundaries() {
        assert_eq!(bitmap_mle(100, 100), 0.0);
        let sat = bitmap_mle(0, 100);
        assert!((sat - 100.0 * (100.0f64).ln()).abs() < 1e-9);
        // Monotone: fewer zeros => larger estimate.
        assert!(bitmap_mle(10, 100) > bitmap_mle(50, 100));
    }

    #[test]
    fn bitmap_mle_matches_expectation() {
        // If c distinct items hash into n bits, E[zeros] = n (1 - 1/n)^c,
        // so mle(E[zeros]) ≈ c for c << n ln n.
        let n = 10_000usize;
        let c = 3_000usize;
        let expected_zeros = (n as f64) * (1.0 - 1.0 / n as f64).powi(c as i32);
        let est = bitmap_mle(expected_zeros.round() as usize, n);
        let re = (est - c as f64).abs() / c as f64;
        assert!(re < 0.02, "relative error {re}");
    }
}
