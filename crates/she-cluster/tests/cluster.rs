//! End-to-end cluster tests: scatter-gather answers bit-for-bit against a
//! single in-process engine, automated failover, and live migration.

use she_cluster::{migrate, ClusterNode, NodeConfig};
use she_server::{cluster_op, Client, DirectEngine, EngineConfig, NodeRef, Server, ServerConfig};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Grab `n` free ports by binding and immediately releasing them. The
/// tiny reuse race is acceptable in tests.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
    listeners.iter().map(|l| l.local_addr().expect("addr").to_string()).collect()
}

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn start_cluster(addrs: &[String], heartbeat_ms: u64) -> (Vec<NodeRef>, Vec<ClusterNode>) {
    let roster: Vec<NodeRef> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| NodeRef { node_id: i as u64 + 1, addr: a.clone() })
        .collect();
    let nodes: Vec<ClusterNode> = roster
        .iter()
        .map(|r| {
            ClusterNode::start(NodeConfig {
                node_id: r.node_id,
                roster: roster.clone(),
                window: 6 * 1024,
                memory_bytes: 12 * 1024,
                seed: 7,
                gossip_ms: 100,
                heartbeat_timeout_ms: heartbeat_ms,
                ..Default::default()
            })
            .expect("start node")
        })
        .collect();
    (roster, nodes)
}

fn client(addr: &str) -> Client {
    let mut c = Client::connect_timeout(addr, Duration::from_secs(5)).expect("connect");
    assert_eq!(c.hello().expect("hello"), 6);
    c
}

/// Route a key batch the way a cluster-aware writer does: bucket by the
/// map's partition function, preserving order, one insert per partition.
fn cluster_insert(roster: &[NodeRef], map: &she_server::ClusterMap, stream: u8, keys: &[u64]) {
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); roster.len()];
    for &k in keys {
        buckets[map.partition_of(k)].push(k);
    }
    for (p, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let mut c = client(&map.partitions[p].primary.addr);
        c.insert_batch(stream, bucket).expect("insert");
    }
}

#[test]
fn scatter_gather_matches_direct_mirror_bit_for_bit() {
    let addrs = reserve_addrs(3);
    let (roster, nodes) = start_cluster(&addrs, 60_000); // no failover here
    let map = nodes[0].directory().get();

    let mut mirror = DirectEngine::new(EngineConfig {
        window: 6 * 1024,
        shards: 3,
        memory_bytes: 12 * 1024,
        seed: 7,
    });

    let mut rng = Rng(0xC1A5_7E55);
    let keys_a: Vec<u64> = (0..2_000).map(|_| rng.next() % 4_096).collect();
    let keys_b: Vec<u64> = (0..500).map(|_| rng.next() % 4_096).collect();
    cluster_insert(&roster, &map, 0, &keys_a);
    cluster_insert(&roster, &map, 1, &keys_b);
    for &k in &keys_a {
        mirror.insert(0, k);
    }
    for &k in &keys_b {
        mirror.insert(1, k);
    }

    // Scatter-gather through two different coordinators; both must agree
    // with the mirror bit-for-bit.
    for coord in [&addrs[0], &addrs[2]] {
        let mut c = client(coord);
        for &k in keys_a.iter().rev().take(64) {
            match c.cluster_query(cluster_op::MEMBER, k).expect("member") {
                she_server::protocol::Response::Bool(b) => assert_eq!(b, mirror.member(k)),
                other => panic!("unexpected member reply {other:?}"),
            }
            match c.cluster_query(cluster_op::FREQ, k).expect("freq") {
                she_server::protocol::Response::U64(f) => assert_eq!(f, mirror.frequency(k)),
                other => panic!("unexpected freq reply {other:?}"),
            }
        }
        match c.cluster_query(cluster_op::CARD, 0).expect("card") {
            she_server::protocol::Response::F64(v) => {
                assert_eq!(v.to_bits(), mirror.cardinality().to_bits());
            }
            other => panic!("unexpected card reply {other:?}"),
        }
        match c.cluster_query(cluster_op::SIM, 0).expect("sim") {
            she_server::protocol::Response::F64(v) => {
                assert_eq!(v.to_bits(), mirror.similarity().to_bits());
            }
            other => panic!("unexpected sim reply {other:?}"),
        }
    }

    for n in nodes {
        n.shutdown();
        n.wait();
    }
}

#[test]
fn killing_a_primary_promotes_its_replica() {
    let addrs = reserve_addrs(3);
    let (roster, mut nodes) = start_cluster(&addrs, 800);
    let map = nodes[0].directory().get();

    // Put keys into every partition, including some owned by partition 0
    // (whose primary we are about to kill).
    let mut rng = Rng(0xDEAD_BEEF_0001);
    let keys: Vec<u64> = (0..900).map(|_| rng.next() % 2_048).collect();
    cluster_insert(&roster, &map, 0, &keys);
    let p0_keys: Vec<u64> = keys.iter().copied().filter(|&k| map.partition_of(k) == 0).collect();
    assert!(!p0_keys.is_empty(), "need at least one partition-0 key");

    // Let the replica tail drain, then kill partition 0's primary.
    std::thread::sleep(Duration::from_millis(1_200));
    let node1 = nodes.remove(0);
    node1.shutdown();
    node1.wait();

    // Node 2 holds partition 0's replica; it must promote itself and the
    // new map must reach node 3 through gossip.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let view = nodes.last().expect("node 3").directory().get();
        if view.epoch >= 2 && view.partitions[0].primary.node_id == 2 {
            break;
        }
        assert!(Instant::now() < deadline, "failover did not converge: {view:?}");
        std::thread::sleep(Duration::from_millis(100));
    }

    // Scatter-gather through node 3 keeps answering for partition-0 keys
    // via the promoted replica.
    let mut c = client(&addrs[2]);
    for &k in p0_keys.iter().rev().take(32) {
        match c.cluster_query(cluster_op::MEMBER, k).expect("member after failover") {
            she_server::protocol::Response::Bool(b) => {
                assert!(b, "key {k} lost by failover");
            }
            other => panic!("unexpected member reply {other:?}"),
        }
    }

    for n in nodes {
        n.shutdown();
        n.wait();
    }
}

#[test]
fn migrate_moves_state_to_a_different_shard_count() {
    let src = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        engine: EngineConfig { window: 4_096, shards: 2, memory_bytes: 8_192, seed: 3 },
        repl_log: 4_096,
        ..Default::default()
    })
    .expect("src");
    // Destination sized exactly as `rebalanced_config(3)` of the source:
    // per-shard window 2048 and memory 4096, times three shards.
    let dst = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        engine: EngineConfig { window: 6_144, shards: 3, memory_bytes: 12_288, seed: 3 },
        ..Default::default()
    })
    .expect("dst");
    let (src_addr, dst_addr) = (src.local_addr().to_string(), dst.local_addr().to_string());

    let mut rng = Rng(0x5EED_0042);
    let keys: Vec<u64> = (0..600).map(|_| rng.next() % 1_024).collect();
    let mut c = client(&src_addr);
    c.insert_batch(0, &keys).expect("insert");

    let report = migrate(&src_addr, &dst_addr, 3, Duration::from_secs(10)).expect("migrate");
    assert_eq!(report.dst_shards, 3);
    assert_eq!(report.applied, report.cut + report.records);

    let mut sc = client(&src_addr);
    let mut dc = client(&dst_addr);
    for &k in keys.iter().rev().take(64) {
        assert!(dc.query_member(k).expect("member"), "key {k} lost in migration");
        let sf = sc.query_freq(k).expect("src freq");
        let df = dc.query_freq(k).expect("dst freq");
        assert!(df >= 1 && df >= sf.min(1), "key {k}: src freq {sf}, dst freq {df}");
    }

    src.shutdown();
    src.wait();
    dst.shutdown();
    dst.wait();
}
