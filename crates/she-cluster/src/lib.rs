//! she-cluster: a partitioned multi-primary cluster over she-server.
//!
//! A cluster of `N` nodes serves `N` key-space *partitions*. Each node
//! runs, inside one [`ClusterNode`]:
//!
//! * a **primary server** for its own partition — a single-shard
//!   she-server sized `window/N`, `memory/N`, exactly how shard `p` of an
//!   `N`-shard engine is sized, which is what makes cluster-wide answers
//!   bit-for-bit identical to one `N`-shard single-process engine (see
//!   `docs/CLUSTER.md`);
//! * a **replica** of its ring predecessor's partition, reusing the
//!   `she-replica` bootstrap + op-log tail runtime;
//! * a **gossip/failover monitor**: every `gossip_ms` it exchanges
//!   cluster maps with every peer (`CLUSTER_JOIN` push-pull, adopting
//!   whichever view is newer under the total order), tracks which peers
//!   answered recently, and when a partition's primary falls silent past
//!   `heartbeat_timeout_ms` runs the deterministic election
//!   ([`ClusterMap::elect`]: lowest-id live replica holder wins). A node
//!   that wins a partition promotes its local replica
//!   ([`she_replica::Replica::promote`]), rewrites the map entry with the
//!   promoted server's real address, and installs the epoch+1 map; every
//!   other node — and every cluster-aware client — picks the new map up
//!   through gossip and re-routes without restarting.
//!
//! Failover convergence is the point of the design: the election is a
//! pure function of `(map, alive)` and maps are totally ordered, so any
//! gossip schedule drives every surviving node to the same view — the
//! seeded property test below drives random heartbeat-loss sequences
//! through random gossip orders and asserts exactly that.
//!
//! [`migrate`] moves one partition between *running* servers: the bulk
//! travels as a `REPL_BOOTSTRAP` checkpoint rebuilt at the destination's
//! shard count (any count — the range-overlap merge in
//! `she_server::snapshot` retired the divisible-only restriction), and
//! the delta replays from the source's op log until the destination has
//! caught the head.

use she_core::OrderedMutex;
use she_replica::{Replica, ReplicaConfig};
use she_server::codec::read_frame;
use she_server::protocol::Response;
use she_server::repl::Record;
use she_server::{
    Checkpoint, Client, ClusterDirectory, ClusterMap, EngineConfig, NodeRef, PartitionMap, Server,
    ServerConfig,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Connect/op deadline for one gossip exchange — short, so one dead peer
/// cannot stall the whole round past the heartbeat budget.
const GOSSIP_OP_TIMEOUT: Duration = Duration::from_millis(1_000);

/// How a node joins a cluster.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's cluster-unique id; elections break ties toward the
    /// lowest id, so ids are placement policy, not just names.
    pub node_id: u64,
    /// Every node in the cluster — including this one — as `id ⇒ addr`.
    /// All nodes must be started with the same roster: the epoch-1 map
    /// is computed from it deterministically, no coordinator involved.
    pub roster: Vec<NodeRef>,
    /// Cluster-wide window, in items; each partition gets `window/N`.
    pub window: u64,
    /// Cluster-wide memory budget per structure; each partition gets
    /// `memory/N`.
    pub memory_bytes: usize,
    /// Sketch seed, identical across the cluster.
    pub seed: u32,
    /// Bounded depth of each server's shard queue, in jobs.
    pub queue_capacity: usize,
    /// Op-log depth on every server (primary *and* replica, so a promoted
    /// replica can feed successors). Must be nonzero: replication is what
    /// failover promotes.
    pub repl_log: usize,
    /// Gossip round interval, in milliseconds.
    pub gossip_ms: u64,
    /// Declare a peer dead after this much gossip silence. Must
    /// comfortably exceed `gossip_ms`.
    pub heartbeat_timeout_ms: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            node_id: 1,
            roster: Vec::new(),
            window: 1 << 16,
            memory_bytes: 64 << 10,
            seed: 1,
            queue_capacity: 256,
            repl_log: 4_096,
            gossip_ms: 250,
            heartbeat_timeout_ms: 2_000,
        }
    }
}

/// Parse a `1@127.0.0.1:7501,2@127.0.0.1:7502` roster string.
pub fn parse_roster(s: &str) -> Result<Vec<NodeRef>, String> {
    let mut roster = Vec::new();
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let Some((id, addr)) = part.split_once('@') else {
            return Err(format!("roster entry `{part}` is not `id@host:port`"));
        };
        let node_id =
            id.parse::<u64>().map_err(|e| format!("roster entry `{part}`: bad id: {e}"))?;
        if addr.is_empty() {
            return Err(format!("roster entry `{part}` has an empty address"));
        }
        // audit:allow(growth): one entry per roster argument
        roster.push(NodeRef { node_id, addr: addr.to_string() });
    }
    if roster.is_empty() {
        return Err("roster is empty".to_string());
    }
    Ok(roster)
}

/// The per-partition engine sizing: shard `p` of an `N`-shard engine.
fn partition_engine(cfg: &NodeConfig, n: usize) -> EngineConfig {
    EngineConfig {
        window: (cfg.window / n as u64).max(1),
        shards: 1,
        memory_bytes: (cfg.memory_bytes / n).max(64),
        seed: cfg.seed,
    }
}

/// One running cluster node: the partition primary, the ring-predecessor
/// replica, and the gossip/failover monitor.
#[derive(Debug)]
pub struct ClusterNode {
    server: Server,
    directory: Arc<ClusterDirectory>,
    replica: Arc<OrderedMutex<Option<Replica>>>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ClusterNode {
    /// Start this node's share of the cluster described by `cfg`.
    ///
    /// The primary server binds immediately; the replica bootstraps in
    /// the background (peers boot in arbitrary order, so the ring
    /// predecessor may not be up yet) and keeps retrying until it
    /// succeeds or the node stops.
    pub fn start(cfg: NodeConfig) -> io::Result<ClusterNode> {
        let mut roster = cfg.roster.clone();
        roster.sort_by_key(|r| r.node_id);
        let n = roster.len();
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty cluster roster"));
        }
        if roster.windows(2).any(|w| w[0].node_id == w[1].node_id) {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "duplicate node id in roster"));
        }
        let Some(me) = roster.iter().position(|r| r.node_id == cfg.node_id) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("node id {} is not in the roster", cfg.node_id),
            ));
        };
        if cfg.repl_log == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cluster nodes need a nonzero repl-log (failover promotes replicas)",
            ));
        }

        let directory = Arc::new(ClusterDirectory::new(ClusterMap::initial(&roster)));
        let server = Server::start(ServerConfig {
            addr: roster[me].addr.clone(),
            engine: partition_engine(&cfg, n),
            queue_capacity: cfg.queue_capacity,
            repl_log: cfg.repl_log,
            cluster: Some(Arc::clone(&directory)),
            ..Default::default()
        })?;

        let stop = Arc::new(AtomicBool::new(false));
        let replica = Arc::new(OrderedMutex::new("cluster-node-replica", None));
        let mut threads = Vec::new();

        // Partition `p` is replicated on `roster[p+1 mod n]`, so node
        // index `me` holds the replica of its ring predecessor.
        let replica_partition = (me + n - 1) % n;
        if n > 1 {
            let rc = ReplicaConfig {
                listen_addr: ephemeral_on_same_host(&roster[me].addr),
                primary: roster[replica_partition].addr.clone(),
                queue_capacity: cfg.queue_capacity,
                heartbeat_timeout_ms: cfg.heartbeat_timeout_ms,
                repl_log: cfg.repl_log,
                cluster: Some(Arc::clone(&directory)),
                max_bootstrap_attempts: 5,
                ..Default::default()
            };
            let (slot, stop) = (Arc::clone(&replica), Arc::clone(&stop));
            // audit:allow(growth): fixed worker set — one replica-bootstrap thread per node
            threads.push(std::thread::Builder::new().name("she-cluster-replica".into()).spawn(
                move || {
                    while !stop.load(Ordering::SeqCst) {
                        match Replica::start(rc.clone()) {
                            Ok(r) => {
                                *slot.lock() = Some(r);
                                return;
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(200)),
                        }
                    }
                },
            )?);
        }

        {
            let (directory, slot) = (Arc::clone(&directory), Arc::clone(&replica));
            let stop = Arc::clone(&stop);
            let (roster, my_id) = (roster.clone(), cfg.node_id);
            let gossip = Duration::from_millis(cfg.gossip_ms.max(10));
            let timeout = Duration::from_millis(cfg.heartbeat_timeout_ms.max(1));
            // audit:allow(growth): fixed worker set — one gossip/failover monitor per node
            threads.push(std::thread::Builder::new().name("she-cluster-gossip".into()).spawn(
                move || {
                    run_monitor(
                        &directory,
                        &slot,
                        &stop,
                        &roster,
                        my_id,
                        replica_partition,
                        gossip,
                        timeout,
                    );
                },
            )?);
        }

        Ok(ClusterNode { server, directory, replica, stop, threads })
    }

    /// The primary server's bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// The node's live view of the cluster map.
    pub fn directory(&self) -> &Arc<ClusterDirectory> {
        &self.directory
    }

    /// Ask the node to stop, as if a client sent `SHUTDOWN`.
    pub fn shutdown(&self) {
        self.server.shutdown();
    }

    /// Block until something stops the node (a wire `SHUTDOWN` or
    /// [`ClusterNode::shutdown`]), then unwind: gossip and bootstrap
    /// threads first, then the replica, then the primary server.
    pub fn wait(mut self) -> Vec<she_server::protocol::ShardStats> {
        while !self.server.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let replica = self.replica.lock().take();
        if let Some(r) = replica {
            r.join();
        }
        self.server.wait()
    }
}

/// `host:port` → `host:0`, so the replica binds an ephemeral port on the
/// same interface its node serves on.
fn ephemeral_on_same_host(addr: &str) -> String {
    match addr.rsplit_once(':') {
        Some((host, _)) => format!("{host}:0"),
        None => "127.0.0.1:0".to_string(),
    }
}

/// The gossip + failover loop (one thread per node).
#[allow(clippy::too_many_arguments)]
fn run_monitor(
    directory: &ClusterDirectory,
    slot: &OrderedMutex<Option<Replica>>,
    stop: &AtomicBool,
    roster: &[NodeRef],
    my_id: u64,
    replica_partition: usize,
    gossip: Duration,
    timeout: Duration,
) {
    // Grace period: every peer counts as just-seen at start, so a node
    // that boots first does not instantly elect itself over peers that
    // are still coming up.
    let mut last_seen: BTreeMap<u64, Instant> =
        roster.iter().map(|r| (r.node_id, Instant::now())).collect();
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(gossip);
        if stop.load(Ordering::SeqCst) {
            return;
        }

        // Push-pull round: offer my view, adopt any newer reply.
        let my_view = directory.get();
        for peer in roster.iter().filter(|r| r.node_id != my_id) {
            if let Ok(mut c) = Client::connect_timeout(&peer.addr, GOSSIP_OP_TIMEOUT) {
                if let Ok(reply) = c.cluster_join(my_id, &my_view) {
                    directory.observe(&reply);
                    last_seen.insert(peer.node_id, Instant::now());
                }
            }
        }

        let now = Instant::now();
        let alive: BTreeSet<u64> = std::iter::once(my_id)
            .chain(
                last_seen
                    .iter()
                    .filter(|(_, t)| now.duration_since(**t) < timeout)
                    .map(|(id, _)| *id),
            )
            .collect();

        let cur = directory.get();
        let Some(cand) = cur.elect(&alive) else { continue };
        // Install nothing unless *this node* won its partition: the
        // candidate's address for any winner is still the roster
        // placeholder, and only the winner knows where its promoted
        // server actually listens. Losers converge by hearing the
        // winner's map through gossip.
        let p = replica_partition;
        if cand.partitions[p].primary.node_id != my_id || cur.partitions[p].primary.node_id == my_id
        {
            continue;
        }
        let promoted = { slot.lock().as_mut().map(Replica::promote) };
        let Some(addr) = promoted else { continue }; // replica not up yet; retry next round
        let mut next = cur.clone();
        next.epoch = cur.epoch + 1;
        next.partitions[p] = PartitionMap {
            primary: NodeRef { node_id: my_id, addr: addr.to_string() },
            replicas: cand.partitions[p].replicas.clone(),
        };
        directory.observe(&next);
    }
}

/// What [`migrate`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// Op-log position the bulk checkpoint was cut at.
    pub cut: u64,
    /// Last op-log record replayed into the destination.
    pub applied: u64,
    /// Delta records replayed after the bulk restore.
    pub records: u64,
    /// Shard count the state was rebuilt at on the destination.
    pub dst_shards: usize,
}

/// Move a running server's state to another running server, live:
///
/// 1. **Bulk** — fetch a `REPL_BOOTSTRAP` package from `src` (checkpoint
///    plus the op-log cut it reflects), rebuild it at `dst_shards` via
///    the range-overlap snapshot merge (any shard count, divisible or
///    not), and `RESTORE` each rebuilt shard into `dst`.
/// 2. **Delta** — subscribe to `src`'s op log from the cut and replay
///    every record into `dst` as a normal insert (routed by `dst`'s own
///    shard map), until a heartbeat confirms the destination has caught
///    the source's head.
///
/// `dst` must be a running server with `dst_shards` shards and the
/// matching rebalanced per-shard sizing (the `RESTORE` frames carry their
/// config, so a mismatch fails cleanly rather than corrupting). Pass
/// `dst_shards == src`'s count for a plain move, or a different count to
/// reshard in flight — this is what retired the "divisible shard-count
/// only" rebalancing restriction.
pub fn migrate(
    src: &str,
    dst: &str,
    dst_shards: usize,
    op_timeout: Duration,
) -> io::Result<MigrationReport> {
    let invalid = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);

    let mut sc = Client::connect_timeout(src, op_timeout)?;
    if sc.hello()? < 3 {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "migration source does not serve REPL_BOOTSTRAP (needs protocol v3)",
        ));
    }
    let (cut, bytes) = sc.repl_bootstrap()?;
    let ckpt = Checkpoint::decode(&bytes).map_err(|e| invalid(e.to_string()))?;
    let target = if dst_shards == 0 { ckpt.cfg.shards } else { dst_shards };
    let (cfg, engines) = ckpt.build_engines(target).map_err(|e| invalid(e.to_string()))?;

    let mut dc = Client::connect_timeout(dst, op_timeout)?;
    dc.hello()?;
    for (j, e) in engines.iter().enumerate() {
        let shard = u32::try_from(j).map_err(|_| invalid("shard index exceeds u32".into()))?;
        dc.restore(shard, &e.snapshot())?;
    }

    // Delta replay: tail the source's log from the cut; a heartbeat whose
    // head we have already applied means the destination is caught up.
    let mut tail = Client::connect_timeout(src, op_timeout)?;
    tail.hello()?;
    let mut sock = tail.subscribe(cut + 1)?;
    sock.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut applied = cut;
    let mut records = 0u64;
    let deadline = Instant::now() + op_timeout;
    loop {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("migration delta did not converge within {op_timeout:?}"),
            ));
        }
        match read_frame(&mut sock) {
            Ok(Some(payload)) => {
                let resp = Response::decode(&payload).map_err(|e| invalid(format!("{e:?}")))?;
                match resp {
                    Response::ReplOp(data) => {
                        let rec = Record::decode(&data).map_err(|e| invalid(format!("{e:?}")))?;
                        if rec.seq <= applied {
                            continue;
                        }
                        if rec.seq != applied + 1 {
                            return Err(invalid(format!(
                                "op-log gap during migration: expected {}, got {}",
                                applied + 1,
                                rec.seq
                            )));
                        }
                        dc.insert_batch(rec.stream, &rec.keys)?;
                        applied = rec.seq;
                        records += 1;
                    }
                    Response::ReplHeartbeat { head } if head <= applied => break,
                    Response::ReplHeartbeat { .. } => {}
                    Response::LogTruncated { .. } => {
                        return Err(invalid("source log truncated under the migration".into()));
                    }
                    Response::Err(e) => return Err(invalid(format!("source refused tail: {e}"))),
                    other => return Err(invalid(format!("unexpected feed frame {other:?}"))),
                }
            }
            Ok(None) => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "source hung up mid-migration",
                ));
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(MigrationReport { cut, applied, records, dst_shards: cfg.shards })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64) -> NodeRef {
        NodeRef { node_id: id, addr: format!("127.0.0.1:{}", 7000 + id) }
    }

    #[test]
    fn roster_parses_and_rejects() {
        let r = parse_roster("1@127.0.0.1:7501, 2@127.0.0.1:7502").expect("parse");
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].node_id, 1);
        assert_eq!(r[1].addr, "127.0.0.1:7502");
        assert!(parse_roster("").is_err());
        assert!(parse_roster("1-127.0.0.1:7501").is_err());
        assert!(parse_roster("x@127.0.0.1:7501").is_err());
        assert!(parse_roster("1@").is_err());
    }

    #[test]
    fn partition_sizing_matches_sharded_engine() {
        let cfg = NodeConfig { window: 1 << 16, memory_bytes: 64 << 10, ..Default::default() };
        let per = partition_engine(&cfg, 3);
        assert_eq!(per.shards, 1);
        assert_eq!(per.window, (1u64 << 16) / 3);
        assert_eq!(per.memory_bytes, (64 << 10) / 3);
    }

    #[test]
    fn start_validates_the_roster() {
        let bad = NodeConfig { node_id: 9, roster: vec![node(1), node(2)], ..Default::default() };
        assert!(ClusterNode::start(bad).is_err(), "id not in roster");
        let dup = NodeConfig { node_id: 1, roster: vec![node(1), node(1)], ..Default::default() };
        assert!(ClusterNode::start(dup).is_err(), "duplicate ids");
        let nolog =
            NodeConfig { node_id: 1, roster: vec![node(1)], repl_log: 0, ..Default::default() };
        assert!(ClusterNode::start(nolog).is_err(), "repl_log 0");
    }

    /// A tiny deterministic RNG (xorshift64*) for the convergence test.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, n: usize) -> usize {
            she_hash::reduce_range(self.next(), n)
        }
    }

    /// What one node's monitor does with an election win, network-free:
    /// install only its own partition's change, with its own (simulated)
    /// promoted address — the exact rule `run_monitor` applies.
    fn apply_local_election(view: &ClusterMap, my_id: u64, alive: &BTreeSet<u64>) -> ClusterMap {
        let Some(cand) = view.elect(alive) else {
            return view.clone();
        };
        for (p, pm) in cand.partitions.iter().enumerate() {
            if pm.primary.node_id == my_id && view.partitions[p].primary.node_id != my_id {
                let mut next = view.clone();
                next.epoch = view.epoch + 1;
                next.partitions[p] = PartitionMap {
                    primary: NodeRef { node_id: my_id, addr: format!("promoted-{my_id}-p{p}") },
                    replicas: pm.replicas.clone(),
                };
                return next;
            }
        }
        view.clone()
    }

    /// Satellite: any sequence of heartbeat losses converges every
    /// surviving node to the same cluster map.
    ///
    /// Simulates the full protocol without sockets: each node keeps its
    /// own view; on every step a random live node dies, every survivor
    /// elects locally (installing only its own wins, as `run_monitor`
    /// does), and random pairwise push-pull gossip rounds run until no
    /// view changes. All views must then be identical, and every
    /// partition with a surviving ring successor must have a live
    /// primary.
    #[test]
    fn seeded_heartbeat_losses_converge_all_views() {
        for seed in 1..=20u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            let n = 3 + (seed as usize % 4); // 3..=6 nodes
            let roster: Vec<NodeRef> = (1..=n as u64).map(node).collect();
            let initial = ClusterMap::initial(&roster);
            let mut views: BTreeMap<u64, ClusterMap> =
                roster.iter().map(|r| (r.node_id, initial.clone())).collect();
            let mut live: BTreeSet<u64> = roster.iter().map(|r| r.node_id).collect();

            while live.len() > 1 {
                // One heartbeat loss: a random live node dies.
                let victims: Vec<u64> = live.iter().copied().collect();
                let dead = victims[rng.below(victims.len())];
                live.remove(&dead);
                views.remove(&dead);

                // Survivors elect locally, then gossip in random pair
                // order until the views reach a fixpoint.
                loop {
                    let ids: Vec<u64> = live.iter().copied().collect();
                    let mut changed = false;
                    for &id in &ids {
                        let next = apply_local_election(&views[&id], id, &live);
                        if next != views[&id] {
                            views.insert(id, next);
                            changed = true;
                        }
                    }
                    for _ in 0..ids.len() * ids.len() {
                        let (a, b) = (ids[rng.below(ids.len())], ids[rng.below(ids.len())]);
                        if a == b {
                            continue;
                        }
                        // Push-pull: both sides adopt the newer view.
                        let (va, vb) = (views[&a].clone(), views[&b].clone());
                        if va.supersedes(&vb) {
                            views.insert(b, va);
                            changed = true;
                        } else if vb.supersedes(&va) {
                            views.insert(a, vb);
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }

                let mut iter = live.iter();
                if let Some(first) = iter.next() {
                    for other in iter {
                        assert_eq!(
                            views[first], views[other],
                            "seed {seed}: views diverged after killing {dead}"
                        );
                    }
                    // Every partition whose replica holder survived must
                    // now be served by a live primary.
                    let settled = &views[first];
                    for (p, pm) in settled.partitions.iter().enumerate() {
                        let holder_survived = pm.primary.node_id
                            == initial.partitions[p].primary.node_id
                            && live.contains(&pm.primary.node_id)
                            || initial.partitions[p]
                                .replicas
                                .iter()
                                .any(|r| live.contains(&r.node_id));
                        if holder_survived {
                            assert!(
                                live.contains(&pm.primary.node_id),
                                "seed {seed}: partition {p} left with dead primary {}",
                                pm.primary.node_id
                            );
                        }
                    }
                }
            }
        }
    }
}
