//! she-cluster: a partitioned multi-primary cluster over she-server.
//!
//! A cluster of `N` nodes serves `N` key-space *partitions*. Each node
//! runs, inside one [`ClusterNode`]:
//!
//! * a **primary server** for its own partition — a single-shard
//!   she-server sized `window/N`, `memory/N`, exactly how shard `p` of an
//!   `N`-shard engine is sized, which is what makes cluster-wide answers
//!   bit-for-bit identical to one `N`-shard single-process engine (see
//!   `docs/CLUSTER.md`);
//! * one **replica slot** per partition the cluster map says this node
//!   holds — at replication factor `R`, each partition is held by its
//!   primary plus the next `R-1` distinct ring successors — each slot
//!   reusing the `she-replica` bootstrap + op-log tail runtime with
//!   cluster-aware re-targeting ([`she_replica::ReplicaConfig::follow`])
//!   and periodic anti-entropy merge sweeps. Slots are *reconciled
//!   against the live map* every monitor tick: when an election drafts
//!   this node into a partition's replica set, the slot is spawned; when
//!   the map moves the partition away, the slot is unwound;
//! * a **gossip/failover monitor**: every `gossip_ms` it exchanges
//!   cluster maps with every peer (`CLUSTER_JOIN` push-pull, adopting
//!   whichever view is newer under the total order), tracks which peers
//!   answered recently, and when a partition's primary falls silent past
//!   `heartbeat_timeout_ms` runs the deterministic election
//!   ([`ClusterMap::elect`]: lowest-id live *holder* wins, and replica
//!   sets are topped back up toward the replication factor from live
//!   non-holders). A node that wins a partition promotes its local
//!   replica ([`she_replica::Replica::promote`]), rewrites the map entry
//!   with the promoted server's real address, and installs the epoch+1
//!   map; a live primary whose partition merely needs its replica set
//!   repaired installs the repair the same way. Every other node — and
//!   every cluster-aware client — picks the new map up through gossip
//!   and re-routes without restarting.
//!
//! Failover convergence is the point of the design: the election is a
//! pure function of `(map, alive)` and maps are totally ordered, so any
//! gossip schedule drives every surviving node to the same view — the
//! seeded property test below drives random heartbeat-loss sequences
//! through random gossip orders and asserts exactly that.
//!
//! [`migrate`] moves one partition between *running* servers: the bulk
//! travels as a `REPL_BOOTSTRAP` checkpoint rebuilt at the destination's
//! shard count (any count — the range-overlap merge in
//! `she_server::snapshot` retired the divisible-only restriction), and
//! the delta replays from the source's op log until the destination has
//! caught the head.

use she_core::OrderedMutex;
use she_replica::{Replica, ReplicaConfig};
use she_server::codec::read_frame;
use she_server::protocol::Response;
use she_server::repl::Record;
use she_server::{
    Checkpoint, Client, ClusterDirectory, ClusterMap, EngineConfig, NodeRef, PartitionMap,
    ReadPathConfig, Server, ServerConfig,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Connect/op deadline for one gossip exchange — short, so one dead peer
/// cannot stall the whole round past the heartbeat budget.
const GOSSIP_OP_TIMEOUT: Duration = Duration::from_millis(1_000);

/// How a node joins a cluster.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's cluster-unique id; elections break ties toward the
    /// lowest id, so ids are placement policy, not just names.
    pub node_id: u64,
    /// Every node in the cluster — including this one — as `id ⇒ addr`.
    /// All nodes must be started with the same roster: the epoch-1 map
    /// is computed from it deterministically, no coordinator involved.
    pub roster: Vec<NodeRef>,
    /// Cluster-wide window, in items; each partition gets `window/N`.
    pub window: u64,
    /// Cluster-wide memory budget per structure; each partition gets
    /// `memory/N`.
    pub memory_bytes: usize,
    /// Sketch seed, identical across the cluster.
    pub seed: u32,
    /// Bounded depth of each server's shard queue, in jobs.
    pub queue_capacity: usize,
    /// Op-log depth on every server (primary *and* replica, so a promoted
    /// replica can feed successors). Must be nonzero: replication is what
    /// failover promotes.
    pub repl_log: usize,
    /// Gossip round interval, in milliseconds.
    pub gossip_ms: u64,
    /// Declare a peer dead after this much gossip silence. Must
    /// comfortably exceed `gossip_ms`.
    pub heartbeat_timeout_ms: u64,
    /// Replication factor: total holders per partition, primary
    /// included (clamped to the roster size). 2 is the pre-v6 layout —
    /// primary plus one ring-successor replica.
    pub replication: u16,
    /// Anti-entropy merge-sweep interval for every replica slot, in
    /// milliseconds; 0 disables periodic sweeps.
    pub anti_entropy_ms: u64,
    /// Serve the v5 `QUERY_FAST` read path on this node's primary and
    /// replica servers.
    pub readpath: bool,
    /// Dial these addresses instead of the roster addresses for
    /// `CLUSTER_JOIN` gossip exchanges with the named peers. This is the
    /// chaos hook: the drill routes gossip through `ChaosProxy` by
    /// pointing `gossip_via` at proxy listeners while data-plane
    /// traffic keeps the real addresses.
    pub gossip_via: BTreeMap<u64, String>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            node_id: 1,
            roster: Vec::new(),
            window: 1 << 16,
            memory_bytes: 64 << 10,
            seed: 1,
            queue_capacity: 256,
            repl_log: 4_096,
            gossip_ms: 250,
            heartbeat_timeout_ms: 2_000,
            replication: 2,
            anti_entropy_ms: 0,
            readpath: false,
            gossip_via: BTreeMap::new(),
        }
    }
}

/// Parse a `1@127.0.0.1:7501,2@127.0.0.1:7502` roster string.
pub fn parse_roster(s: &str) -> Result<Vec<NodeRef>, String> {
    let mut roster = Vec::new();
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let Some((id, addr)) = part.split_once('@') else {
            return Err(format!("roster entry `{part}` is not `id@host:port`"));
        };
        let node_id =
            id.parse::<u64>().map_err(|e| format!("roster entry `{part}`: bad id: {e}"))?;
        if addr.is_empty() {
            return Err(format!("roster entry `{part}` has an empty address"));
        }
        // audit:allow(growth): one entry per roster argument
        roster.push(NodeRef { node_id, addr: addr.to_string() });
    }
    if roster.is_empty() {
        return Err("roster is empty".to_string());
    }
    Ok(roster)
}

/// The per-partition engine sizing: shard `p` of an `N`-shard engine.
fn partition_engine(cfg: &NodeConfig, n: usize) -> EngineConfig {
    EngineConfig {
        window: (cfg.window / n as u64).max(1),
        shards: 1,
        memory_bytes: (cfg.memory_bytes / n).max(64),
        seed: cfg.seed,
    }
}

/// One running cluster node: the partition primary, the replica slots
/// the map assigns it, and the gossip/failover monitor that owns them.
#[derive(Debug)]
pub struct ClusterNode {
    server: Server,
    directory: Arc<ClusterDirectory>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ClusterNode {
    /// Start this node's share of the cluster described by `cfg`.
    ///
    /// The primary server binds immediately; replica slots bootstrap in
    /// the background (peers boot in arbitrary order, so an upstream may
    /// not be up yet) and keep retrying until they succeed, the map
    /// moves the partition away, or the node stops.
    pub fn start(cfg: NodeConfig) -> io::Result<ClusterNode> {
        let mut roster = cfg.roster.clone();
        roster.sort_by_key(|r| r.node_id);
        let n = roster.len();
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty cluster roster"));
        }
        if roster.windows(2).any(|w| w[0].node_id == w[1].node_id) {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "duplicate node id in roster"));
        }
        let Some(me) = roster.iter().position(|r| r.node_id == cfg.node_id) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("node id {} is not in the roster", cfg.node_id),
            ));
        };
        if cfg.repl_log == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cluster nodes need a nonzero repl-log (failover promotes replicas)",
            ));
        }

        let directory =
            Arc::new(ClusterDirectory::new(ClusterMap::initial_rf(&roster, cfg.replication)));
        let server = Server::start(ServerConfig {
            addr: roster[me].addr.clone(),
            engine: partition_engine(&cfg, n),
            queue_capacity: cfg.queue_capacity,
            repl_log: cfg.repl_log,
            cluster: Some(Arc::clone(&directory)),
            readpath: cfg.readpath.then(ReadPathConfig::default),
            ..Default::default()
        })?;

        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        {
            let directory = Arc::clone(&directory);
            let stop = Arc::clone(&stop);
            let cfg = cfg.clone();
            let my_addr = roster[me].addr.clone();
            // audit:allow(growth): fixed worker set — one gossip/failover monitor per node
            threads.push(std::thread::Builder::new().name("she-cluster-gossip".into()).spawn(
                move || {
                    Monitor {
                        directory,
                        stop,
                        cfg,
                        roster,
                        my_addr,
                        slots: BTreeMap::new(),
                        promoted: Vec::new(),
                    }
                    .run();
                },
            )?);
        }

        Ok(ClusterNode { server, directory, stop, threads })
    }

    /// The primary server's bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// The node's live view of the cluster map.
    pub fn directory(&self) -> &Arc<ClusterDirectory> {
        &self.directory
    }

    /// Ask the node to stop, as if a client sent `SHUTDOWN`.
    pub fn shutdown(&self) {
        self.server.shutdown();
    }

    /// Block until something stops the node (a wire `SHUTDOWN` or
    /// [`ClusterNode::shutdown`]), then unwind: the monitor thread first
    /// (which in turn unwinds every replica slot and promoted replica it
    /// owns), then the primary server.
    pub fn wait(mut self) -> Vec<she_server::protocol::ShardStats> {
        while !self.server.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.server.wait()
    }
}

/// `host:port` → `host:0`, so the replica binds an ephemeral port on the
/// same interface its node serves on.
fn ephemeral_on_same_host(addr: &str) -> String {
    match addr.rsplit_once(':') {
        Some((host, _)) => format!("{host}:0"),
        None => "127.0.0.1:0".to_string(),
    }
}

/// One replica slot the monitor owns: the cell its bootstrap thread
/// fills, the flag that cancels that thread, and the thread itself.
#[derive(Debug)]
struct Slot {
    cell: Arc<OrderedMutex<Option<Replica>>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// The gossip + failover loop (one thread per node). The monitor is the
/// sole owner of this node's replica slots and promoted replicas, so
/// slot lifecycle needs no cross-thread coordination beyond the cells.
#[derive(Debug)]
struct Monitor {
    directory: Arc<ClusterDirectory>,
    stop: Arc<AtomicBool>,
    cfg: NodeConfig,
    roster: Vec<NodeRef>,
    my_addr: String,
    /// Live replica slots, keyed by partition.
    slots: BTreeMap<usize, Slot>,
    /// Replicas this node promoted to partition primaries; they keep
    /// serving until the node unwinds.
    promoted: Vec<Replica>,
}

impl Monitor {
    fn run(mut self) {
        let gossip = Duration::from_millis(self.cfg.gossip_ms.max(10));
        let timeout = Duration::from_millis(self.cfg.heartbeat_timeout_ms.max(1));
        let my_id = self.cfg.node_id;
        // Grace period: every peer counts as just-seen at start, so a
        // node that boots first does not instantly elect itself over
        // peers that are still coming up.
        let mut last_seen: BTreeMap<u64, Instant> =
            self.roster.iter().map(|r| (r.node_id, Instant::now())).collect();
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(gossip);
            if self.stop.load(Ordering::SeqCst) {
                break;
            }

            // Push-pull round: offer my view, adopt any newer reply.
            // `gossip_via` lets the chaos drill splice a fault proxy into
            // exactly this exchange and nothing else.
            let my_view = self.directory.get();
            for peer in self.roster.iter().filter(|r| r.node_id != my_id) {
                let dial = self.cfg.gossip_via.get(&peer.node_id).map_or(peer.addr.as_str(), |v| v);
                if let Ok(mut c) = Client::connect_timeout(dial, GOSSIP_OP_TIMEOUT) {
                    if let Ok(reply) = c.cluster_join(my_id, &my_view) {
                        self.directory.observe(&reply);
                        last_seen.insert(peer.node_id, Instant::now());
                    }
                }
            }

            let now = Instant::now();
            let alive: BTreeSet<u64> = std::iter::once(my_id)
                .chain(
                    last_seen
                        .iter()
                        .filter(|(_, t)| now.duration_since(**t) < timeout)
                        .map(|(id, _)| *id),
                )
                .collect();

            self.reconcile_slots();
            self.elect_and_install(&alive);
        }
        self.unwind();
    }

    /// Bring the owned replica slots in line with the current map: spawn
    /// a slot for every partition whose replica set names this node, and
    /// unwind slots for partitions the map moved elsewhere (or that this
    /// node now serves as primary).
    fn reconcile_slots(&mut self) {
        let my_id = self.cfg.node_id;
        let map = self.directory.get();
        let desired: BTreeSet<usize> = map
            .partitions
            .iter()
            .enumerate()
            .filter(|(_, pm)| {
                pm.primary.node_id != my_id && pm.replicas.iter().any(|r| r.node_id == my_id)
            })
            .map(|(p, _)| p)
            .collect();
        let stale: Vec<usize> =
            self.slots.keys().copied().filter(|p| !desired.contains(p)).collect();
        for p in stale {
            if let Some(slot) = self.slots.remove(&p) {
                unwind_slot(slot);
            }
        }
        for &p in &desired {
            if !self.slots.contains_key(&p) {
                if let Some(slot) = self.spawn_slot(p, &map) {
                    self.slots.insert(p, slot);
                }
            }
        }
    }

    /// Start one replica slot for partition `p`: a retrying bootstrap
    /// thread that parks the built [`Replica`] in the slot's cell. The
    /// replica follows the partition through the directory, so it
    /// re-targets a promoted upstream on its own.
    fn spawn_slot(&self, p: usize, map: &ClusterMap) -> Option<Slot> {
        let rc = ReplicaConfig {
            listen_addr: ephemeral_on_same_host(&self.my_addr),
            primary: map.partitions.get(p)?.primary.addr.clone(),
            queue_capacity: self.cfg.queue_capacity,
            heartbeat_timeout_ms: self.cfg.heartbeat_timeout_ms,
            repl_log: self.cfg.repl_log,
            cluster: Some(Arc::clone(&self.directory)),
            readpath: self.cfg.readpath.then(ReadPathConfig::default),
            anti_entropy_ms: self.cfg.anti_entropy_ms,
            follow: Some(p),
            node_id: self.cfg.node_id,
            max_bootstrap_attempts: 2,
            ..Default::default()
        };
        let cell = Arc::new(OrderedMutex::new("cluster-node-replica", None));
        let slot_stop = Arc::new(AtomicBool::new(false));
        let (cell2, stop2, node_stop) =
            (Arc::clone(&cell), Arc::clone(&slot_stop), Arc::clone(&self.stop));
        let thread = std::thread::Builder::new()
            .name("she-cluster-replica".into())
            .spawn(move || {
                while !stop2.load(Ordering::SeqCst) && !node_stop.load(Ordering::SeqCst) {
                    match Replica::start(rc.clone()) {
                        Ok(r) => {
                            *cell2.lock() = Some(r);
                            return;
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(200)),
                    }
                }
            })
            .ok()?;
        Some(Slot { cell, stop: slot_stop, thread: Some(thread) })
    }

    /// Run the deterministic election and install every changed
    /// partition *this node* is responsible for: promotions of its own
    /// replica slots (rewriting the map entry with the promoted server's
    /// real address — only the winner knows it) and replica-set repairs
    /// of partitions it already serves as primary. Losers converge by
    /// hearing the winner's map through gossip.
    fn elect_and_install(&mut self, alive: &BTreeSet<u64>) {
        let my_id = self.cfg.node_id;
        let cur = self.directory.get();
        let Some(cand) = cur.elect(alive) else { return };
        let mut next = cur.clone();
        let mut installed = false;
        for p in 0..cand.partitions.len() {
            if cand.partitions[p] == cur.partitions[p]
                || cand.partitions[p].primary.node_id != my_id
            {
                continue;
            }
            if cur.partitions[p].primary.node_id == my_id {
                // Already this partition's primary: install the repaired
                // replica set as-is.
                next.partitions[p] = cand.partitions[p].clone();
                installed = true;
                continue;
            }
            // A promotion: take the local replica out of its slot. Not
            // bootstrapped yet means retry next round — the candidate is
            // a pure function of (map, alive), so it will reappear.
            let taken = match self.slots.get(&p) {
                Some(slot) => slot.cell.lock().take(),
                None => None,
            };
            let Some(mut replica) = taken else { continue };
            let addr = replica.promote();
            // audit:allow(growth): bounded by the partition count
            self.promoted.push(replica);
            next.partitions[p] = PartitionMap {
                primary: NodeRef { node_id: my_id, addr: addr.to_string() },
                replicas: cand.partitions[p].replicas.clone(),
            };
            installed = true;
        }
        if installed {
            next.epoch = cur.epoch + 1;
            self.directory.observe(&next);
        }
    }

    /// Stop and join everything the monitor owns.
    fn unwind(&mut self) {
        let slots = std::mem::take(&mut self.slots);
        for (_, slot) in slots {
            unwind_slot(slot);
        }
        for replica in self.promoted.drain(..) {
            replica.join();
        }
    }
}

/// Stop one slot: cancel its bootstrap thread, then shut down whatever
/// replica it had built.
fn unwind_slot(mut slot: Slot) {
    slot.stop.store(true, Ordering::SeqCst);
    if let Some(t) = slot.thread.take() {
        let _ = t.join();
    }
    let replica = slot.cell.lock().take();
    if let Some(r) = replica {
        r.join();
    }
}

/// What [`migrate`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// Op-log position the bulk checkpoint was cut at.
    pub cut: u64,
    /// Last op-log record replayed into the destination.
    pub applied: u64,
    /// Delta records replayed after the bulk restore.
    pub records: u64,
    /// Shard count the state was rebuilt at on the destination.
    pub dst_shards: usize,
}

/// Move a running server's state to another running server, live:
///
/// 1. **Bulk** — fetch a `REPL_BOOTSTRAP` package from `src` (checkpoint
///    plus the op-log cut it reflects), rebuild it at `dst_shards` via
///    the range-overlap snapshot merge (any shard count, divisible or
///    not), and `RESTORE` each rebuilt shard into `dst`.
/// 2. **Delta** — subscribe to `src`'s op log from the cut and replay
///    every record into `dst` as a normal insert (routed by `dst`'s own
///    shard map), until a heartbeat confirms the destination has caught
///    the source's head.
///
/// `dst` must be a running server with `dst_shards` shards and the
/// matching rebalanced per-shard sizing (the `RESTORE` frames carry their
/// config, so a mismatch fails cleanly rather than corrupting). Pass
/// `dst_shards == src`'s count for a plain move, or a different count to
/// reshard in flight — this is what retired the "divisible shard-count
/// only" rebalancing restriction.
pub fn migrate(
    src: &str,
    dst: &str,
    dst_shards: usize,
    op_timeout: Duration,
) -> io::Result<MigrationReport> {
    let invalid = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);

    let mut sc = Client::connect_timeout(src, op_timeout)?;
    if sc.hello()? < 3 {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "migration source does not serve REPL_BOOTSTRAP (needs protocol v3)",
        ));
    }
    let (cut, bytes) = sc.repl_bootstrap()?;
    let ckpt = Checkpoint::decode(&bytes).map_err(|e| invalid(e.to_string()))?;
    let target = if dst_shards == 0 { ckpt.cfg.shards } else { dst_shards };
    let (cfg, engines) = ckpt.build_engines(target).map_err(|e| invalid(e.to_string()))?;

    let mut dc = Client::connect_timeout(dst, op_timeout)?;
    dc.hello()?;
    for (j, e) in engines.iter().enumerate() {
        let shard = u32::try_from(j).map_err(|_| invalid("shard index exceeds u32".into()))?;
        dc.restore(shard, &e.snapshot())?;
    }

    // Delta replay: tail the source's log from the cut; a heartbeat whose
    // head we have already applied means the destination is caught up.
    let mut tail = Client::connect_timeout(src, op_timeout)?;
    tail.hello()?;
    let mut sock = tail.subscribe(cut + 1)?;
    sock.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut applied = cut;
    let mut records = 0u64;
    let deadline = Instant::now() + op_timeout;
    loop {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("migration delta did not converge within {op_timeout:?}"),
            ));
        }
        match read_frame(&mut sock) {
            Ok(Some(payload)) => {
                let resp = Response::decode(&payload).map_err(|e| invalid(format!("{e:?}")))?;
                match resp {
                    Response::ReplOp(data) => {
                        let rec = Record::decode(&data).map_err(|e| invalid(format!("{e:?}")))?;
                        if rec.seq <= applied {
                            continue;
                        }
                        if rec.seq != applied + 1 {
                            return Err(invalid(format!(
                                "op-log gap during migration: expected {}, got {}",
                                applied + 1,
                                rec.seq
                            )));
                        }
                        dc.insert_batch(rec.stream, &rec.keys)?;
                        applied = rec.seq;
                        records += 1;
                    }
                    Response::ReplHeartbeat { head } if head <= applied => break,
                    Response::ReplHeartbeat { .. } => {}
                    Response::LogTruncated { .. } => {
                        return Err(invalid("source log truncated under the migration".into()));
                    }
                    Response::Err(e) => return Err(invalid(format!("source refused tail: {e}"))),
                    other => return Err(invalid(format!("unexpected feed frame {other:?}"))),
                }
            }
            Ok(None) => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "source hung up mid-migration",
                ));
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(MigrationReport { cut, applied, records, dst_shards: cfg.shards })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64) -> NodeRef {
        NodeRef { node_id: id, addr: format!("127.0.0.1:{}", 7000 + id) }
    }

    #[test]
    fn roster_parses_and_rejects() {
        let r = parse_roster("1@127.0.0.1:7501, 2@127.0.0.1:7502").expect("parse");
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].node_id, 1);
        assert_eq!(r[1].addr, "127.0.0.1:7502");
        assert!(parse_roster("").is_err());
        assert!(parse_roster("1-127.0.0.1:7501").is_err());
        assert!(parse_roster("x@127.0.0.1:7501").is_err());
        assert!(parse_roster("1@").is_err());
    }

    #[test]
    fn partition_sizing_matches_sharded_engine() {
        let cfg = NodeConfig { window: 1 << 16, memory_bytes: 64 << 10, ..Default::default() };
        let per = partition_engine(&cfg, 3);
        assert_eq!(per.shards, 1);
        assert_eq!(per.window, (1u64 << 16) / 3);
        assert_eq!(per.memory_bytes, (64 << 10) / 3);
    }

    #[test]
    fn start_validates_the_roster() {
        let bad = NodeConfig { node_id: 9, roster: vec![node(1), node(2)], ..Default::default() };
        assert!(ClusterNode::start(bad).is_err(), "id not in roster");
        let dup = NodeConfig { node_id: 1, roster: vec![node(1), node(1)], ..Default::default() };
        assert!(ClusterNode::start(dup).is_err(), "duplicate ids");
        let nolog =
            NodeConfig { node_id: 1, roster: vec![node(1)], repl_log: 0, ..Default::default() };
        assert!(ClusterNode::start(nolog).is_err(), "repl_log 0");
    }

    /// A tiny deterministic RNG (xorshift64*) for the convergence test.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, n: usize) -> usize {
            she_hash::reduce_range(self.next(), n)
        }
    }

    /// What one node's monitor does with an election, network-free: the
    /// exact rule [`Monitor::elect_and_install`] applies — install every
    /// changed partition this node is responsible for, promotions with
    /// this node's (simulated) promoted address, replica-set repairs of
    /// partitions it already serves as-is.
    fn apply_local_election(view: &ClusterMap, my_id: u64, alive: &BTreeSet<u64>) -> ClusterMap {
        let Some(cand) = view.elect(alive) else {
            return view.clone();
        };
        let mut next = view.clone();
        let mut installed = false;
        for (p, pm) in cand.partitions.iter().enumerate() {
            if *pm == view.partitions[p] || pm.primary.node_id != my_id {
                continue;
            }
            if view.partitions[p].primary.node_id == my_id {
                next.partitions[p] = pm.clone();
            } else {
                next.partitions[p] = PartitionMap {
                    primary: NodeRef { node_id: my_id, addr: format!("promoted-{my_id}-p{p}") },
                    replicas: pm.replicas.clone(),
                };
            }
            installed = true;
        }
        if installed {
            next.epoch = view.epoch + 1;
            next
        } else {
            view.clone()
        }
    }

    /// One convergence run: random heartbeat losses, each followed by
    /// local elections and gossip rounds whose exchanges are themselves
    /// faulted — dropped or delivered twice, in random order — until the
    /// surviving views reach a fixpoint under *clean* gossip. Asserts
    /// every pair of surviving views is identical and every partition
    /// that kept a live holder has a live primary.
    fn converge_under_faults(seed: u64, rf: u16) {
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(rf) | 1);
        let n = 3 + (seed as usize % 4); // 3..=6 nodes
        let roster: Vec<NodeRef> = (1..=n as u64).map(node).collect();
        let initial = ClusterMap::initial_rf(&roster, rf);
        let mut views: BTreeMap<u64, ClusterMap> =
            roster.iter().map(|r| (r.node_id, initial.clone())).collect();
        let mut live: BTreeSet<u64> = roster.iter().map(|r| r.node_id).collect();

        while live.len() > 1 {
            // One heartbeat loss: a random live node dies.
            let victims: Vec<u64> = live.iter().copied().collect();
            let dead = victims[rng.below(victims.len())];
            live.remove(&dead);
            views.remove(&dead);

            // Chaos phase: elections interleaved with gossip exchanges
            // that may be dropped (fault proxy reset) or applied twice
            // (duplicated delivery). Neither can corrupt convergence:
            // adoption is idempotent and drops only delay propagation.
            let ids: Vec<u64> = live.iter().copied().collect();
            for _ in 0..ids.len() * ids.len() {
                let id = ids[rng.below(ids.len())];
                let next = apply_local_election(&views[&id], id, &live);
                views.insert(id, next);
                let (a, b) = (ids[rng.below(ids.len())], ids[rng.below(ids.len())]);
                if a == b {
                    continue;
                }
                let repeats = match rng.below(4) {
                    0 => 0, // dropped exchange
                    3 => 2, // duplicated delivery
                    _ => 1,
                };
                for _ in 0..repeats {
                    let (va, vb) = (views[&a].clone(), views[&b].clone());
                    if va.supersedes(&vb) {
                        views.insert(b, va);
                    } else if vb.supersedes(&va) {
                        views.insert(a, vb);
                    }
                }
            }

            // Settle phase: elections + clean pairwise gossip to fixpoint.
            loop {
                let mut changed = false;
                for &id in &ids {
                    let next = apply_local_election(&views[&id], id, &live);
                    if next != views[&id] {
                        views.insert(id, next);
                        changed = true;
                    }
                }
                for &a in &ids {
                    for &b in &ids {
                        if a == b {
                            continue;
                        }
                        let (va, vb) = (views[&a].clone(), views[&b].clone());
                        if va.supersedes(&vb) {
                            views.insert(b, va);
                            changed = true;
                        } else if vb.supersedes(&va) {
                            views.insert(a, vb);
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }

            let mut iter = live.iter();
            if let Some(first) = iter.next() {
                for other in iter {
                    assert_eq!(
                        views[first], views[other],
                        "seed {seed} rf {rf}: views diverged after killing {dead}"
                    );
                }
                // Every partition that kept at least one live holder must
                // be served by a live primary. `views[first]` is the
                // settled holder set from *before* this kill round plus
                // repairs, so judge liveness against the previous settled
                // view's holders — conservatively, against the current
                // one: a live listed holder implies promotability.
                let settled = views[first].clone();
                for (p, pm) in settled.partitions.iter().enumerate() {
                    assert!(
                        live.contains(&pm.primary.node_id)
                            || pm.replicas.iter().all(|r| !live.contains(&r.node_id)),
                        "seed {seed} rf {rf}: partition {p} has a live holder but dead primary {}",
                        pm.primary.node_id
                    );
                    // Replica sets stay topped up while candidates exist:
                    // holders + primary reach min(rf, live).
                    if live.contains(&pm.primary.node_id) {
                        let holders =
                            1 + pm.replicas.iter().filter(|r| live.contains(&r.node_id)).count();
                        assert!(
                            holders >= usize::from(rf).min(live.len()),
                            "seed {seed} rf {rf}: partition {p} under-replicated: {holders} holders"
                        );
                    }
                }
            }
        }
    }

    /// Satellite: any sequence of heartbeat losses — with gossip
    /// exchanges dropped and duplicated along the way — converges every
    /// surviving node to the same cluster map, at RF=2 and RF=3.
    #[test]
    fn seeded_heartbeat_losses_converge_all_views() {
        for seed in 1..=20u64 {
            converge_under_faults(seed, 2);
        }
    }

    #[test]
    fn seeded_heartbeat_losses_converge_all_views_rf3() {
        for seed in 1..=20u64 {
            converge_under_faults(seed, 3);
        }
    }
}
