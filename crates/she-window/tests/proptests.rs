//! Property tests for the exact-window substrates, as deterministic
//! seeded loops over randomized cases (same invariants as the original
//! `proptest` suite, reproducible from the fixed seeds).

use she_hash::{RandomSource, Xoshiro256};
use she_window::{ExponentialHistogram, PairTruth, WindowTruth};

/// WindowTruth matches a naive O(N) recomputation for any stream.
#[test]
fn window_truth_matches_naive() {
    for case in 0..24u64 {
        let mut rng = Xoshiro256::new(0x717A ^ case);
        let window = 1 + rng.next_below(59);
        let n = 1 + rng.next_below(399);
        let keys: Vec<u64> = (0..n).map(|_| rng.next_below(30) as u64).collect();
        let mut w = WindowTruth::new(window);
        for (i, &k) in keys.iter().enumerate() {
            w.insert(k);
            let tail: Vec<u64> = keys[..=i].iter().rev().take(window).copied().collect();
            let distinct: std::collections::HashSet<u64> = tail.iter().copied().collect();
            assert_eq!(w.cardinality(), distinct.len(), "case {case}");
            assert_eq!(w.len(), tail.len(), "case {case}");
            for &k2 in &distinct {
                assert_eq!(
                    w.frequency(k2) as usize,
                    tail.iter().filter(|&&t| t == k2).count(),
                    "case {case}"
                );
                assert!(w.contains(k2), "case {case}");
            }
        }
    }
}

/// PairTruth's Jaccard matches a set-based recomputation.
#[test]
fn pair_truth_jaccard_matches_sets() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::new(0x9A1C ^ case);
        let window = 1 + rng.next_below(39);
        let n = 1 + rng.next_below(199);
        let pairs: Vec<(u64, u64)> =
            (0..n).map(|_| (rng.next_below(20) as u64, rng.next_below(20) as u64)).collect();
        let mut p = PairTruth::new(window);
        for &(a, b) in &pairs {
            p.insert_a(a);
            p.insert_b(b);
        }
        let tail_a: std::collections::HashSet<u64> =
            pairs.iter().rev().take(window).map(|&(a, _)| a).collect();
        let tail_b: std::collections::HashSet<u64> =
            pairs.iter().rev().take(window).map(|&(_, b)| b).collect();
        let inter = tail_a.intersection(&tail_b).count();
        let union = tail_a.len() + tail_b.len() - inter;
        let expect = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
        assert!((p.jaccard() - expect).abs() < 1e-12, "case {case}");
    }
}

/// The exponential histogram's estimate stays within its guaranteed
/// relative error of the exact window count, for any arrival pattern.
#[test]
fn eh_error_bound_holds() {
    for case in 0..24u64 {
        let mut rng = Xoshiro256::new(0xE4B0 ^ case);
        let window = rng.next_range(2, 200);
        let k = 2 + rng.next_below(8);
        let n = 1 + rng.next_below(499);
        let mut eh = ExponentialHistogram::new(window, k);
        let mut times = Vec::new();
        let mut t = 0u64;
        for _ in 0..n {
            t += rng.next_range(1, 5);
            eh.record(t);
            times.push(t);
            let exact = times.iter().filter(|&&e| t < window || e > t - window).count() as f64;
            let est = eh.estimate() as f64;
            let bound = exact / k as f64 + 1.0; // ±1 for the integer floor
            assert!(
                (est - exact).abs() <= bound,
                "case {case}: t={t} est={est} exact={exact} bound={bound}"
            );
        }
    }
}

/// Advancing time far enough always empties the histogram.
#[test]
fn eh_total_expiry() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::new(0xE897 ^ case);
        let window = rng.next_range(1, 100);
        let k = 1 + rng.next_below(7);
        let n = rng.next_below(100);
        let mut eh = ExponentialHistogram::new(window, k);
        let mut t = 0;
        for _ in 0..n {
            t += rng.next_range(1, 1000);
            eh.record(t);
        }
        eh.advance_to(t + window + 1);
        assert_eq!(eh.estimate(), 0, "case {case}");
        assert_eq!(eh.num_buckets(), 0, "case {case}");
    }
}
