//! Property tests for the exact-window substrates.

use proptest::prelude::*;
use she_window::{ExponentialHistogram, PairTruth, WindowTruth};

proptest! {
    /// WindowTruth matches a naive O(N) recomputation for any stream.
    #[test]
    fn window_truth_matches_naive(
        window in 1usize..60,
        keys in prop::collection::vec(0u64..30, 1..400),
    ) {
        let mut w = WindowTruth::new(window);
        for (i, &k) in keys.iter().enumerate() {
            w.insert(k);
            let tail: Vec<u64> = keys[..=i].iter().rev().take(window).copied().collect();
            let distinct: std::collections::HashSet<u64> = tail.iter().copied().collect();
            prop_assert_eq!(w.cardinality(), distinct.len());
            prop_assert_eq!(w.len(), tail.len());
            for &k2 in &distinct {
                prop_assert_eq!(
                    w.frequency(k2) as usize,
                    tail.iter().filter(|&&t| t == k2).count()
                );
                prop_assert!(w.contains(k2));
            }
        }
    }

    /// PairTruth's Jaccard matches a set-based recomputation.
    #[test]
    fn pair_truth_jaccard_matches_sets(
        window in 1usize..40,
        pairs in prop::collection::vec((0u64..20, 0u64..20), 1..200),
    ) {
        let mut p = PairTruth::new(window);
        for &(a, b) in &pairs {
            p.insert_a(a);
            p.insert_b(b);
        }
        let tail_a: std::collections::HashSet<u64> =
            pairs.iter().rev().take(window).map(|&(a, _)| a).collect();
        let tail_b: std::collections::HashSet<u64> =
            pairs.iter().rev().take(window).map(|&(_, b)| b).collect();
        let inter = tail_a.intersection(&tail_b).count();
        let union = tail_a.len() + tail_b.len() - inter;
        let expect = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
        prop_assert!((p.jaccard() - expect).abs() < 1e-12);
    }

    /// The exponential histogram's estimate stays within its guaranteed
    /// relative error of the exact window count, for any arrival pattern.
    #[test]
    fn eh_error_bound_holds(
        window in 2u64..200,
        k in 2usize..10,
        gaps in prop::collection::vec(1u64..5, 1..500),
    ) {
        let mut eh = ExponentialHistogram::new(window, k);
        let mut times = Vec::new();
        let mut t = 0u64;
        for g in gaps {
            t += g;
            eh.record(t);
            times.push(t);
            let exact = times
                .iter()
                .filter(|&&e| t < window || e > t - window)
                .count() as f64;
            let est = eh.estimate() as f64;
            let bound = exact / k as f64 + 1.0; // ±1 for the integer floor
            prop_assert!(
                (est - exact).abs() <= bound,
                "t={} est={} exact={} bound={}", t, est, exact, bound
            );
        }
    }

    /// Advancing time far enough always empties the histogram.
    #[test]
    fn eh_total_expiry(
        window in 1u64..100,
        k in 1usize..8,
        events in prop::collection::vec(1u64..1000, 0..100),
    ) {
        let mut eh = ExponentialHistogram::new(window, k);
        let mut t = 0;
        for e in events {
            t += e;
            eh.record(t);
        }
        eh.advance_to(t + window + 1);
        prop_assert_eq!(eh.estimate(), 0);
        prop_assert_eq!(eh.num_buckets(), 0);
    }
}
