//! Exact sliding-window substrates.
//!
//! Two independent pieces both needed by the evaluation:
//!
//! * [`ExponentialHistogram`] — the Datar–Gionis–Indyk–Motwani counter over
//!   a sliding window. The ECM baseline (Papapetrou et al., compared against
//!   SHE-CM in Fig. 9c) replaces every Count-Min counter with one of these.
//! * [`truth`] — exact sliding-window oracles ([`truth::WindowTruth`],
//!   [`truth::PairTruth`]) used to compute the FPR/RE/ARE metrics of every
//!   figure: exact membership, frequency, cardinality, and Jaccard
//!   similarity over the last `N` items.

mod eh;
pub mod truth;

pub use eh::ExponentialHistogram;
pub use truth::{PairTruth, WindowTruth};
