//! Exponential histograms (Datar, Gionis, Indyk, Motwani — SODA 2002).
//!
//! Counts events in the last `N` time units with relative error at most
//! `1/k` using `O(k log²N)` bits. Buckets hold power-of-two event counts
//! with their most-recent timestamp; at most `k + 1` buckets of each size
//! are kept, merging the two oldest of a size when the invariant is
//! violated. The estimate drops half the oldest bucket.

/// One bucket: `size` events whose last arrival was at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bucket {
    time: u64,
    size: u64,
}

/// A sliding-window event counter with bounded relative error.
#[derive(Debug, Clone)]
pub struct ExponentialHistogram {
    window: u64,
    k: usize,
    /// Buckets ordered oldest-first; sizes are non-increasing towards the
    /// back... (non-decreasing towards the front): front = oldest/largest.
    buckets: Vec<Bucket>,
    /// Sum of all bucket sizes (kept incrementally).
    total: u64,
    now: u64,
}

impl ExponentialHistogram {
    /// Counter over the last `window` time units with error parameter `k`
    /// (relative error ≤ `1/k`).
    pub fn new(window: u64, k: usize) -> Self {
        assert!(window > 0 && k >= 1);
        Self { window, k, buckets: Vec::new(), total: 0, now: 0 }
    }

    /// The window length.
    #[inline]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Advance the clock to `t` (monotone) and expire old buckets.
    pub fn advance_to(&mut self, t: u64) {
        debug_assert!(t >= self.now, "clock must be monotone");
        self.now = t;
        self.expire();
    }

    /// Record one event at time `t` (monotone).
    pub fn record(&mut self, t: u64) {
        self.advance_to(t);
        self.buckets.push(Bucket { time: t, size: 1 });
        self.total += 1;
        self.carry();
    }

    fn expire(&mut self) {
        let cutoff = self.now.saturating_sub(self.window);
        // Window is the last `window` units: an event at time `e` is inside
        // iff e > now - window.
        let mut drop = 0;
        for b in &self.buckets {
            if b.time <= cutoff && self.now >= self.window {
                drop += 1;
            } else {
                break;
            }
        }
        for b in self.buckets.drain(..drop) {
            self.total -= b.size;
        }
    }

    /// Restore the ≤ k+1-buckets-per-size invariant by merging from the
    /// smallest size upwards.
    fn carry(&mut self) {
        let limit = self.k + 1;
        let mut size = 1u64;
        loop {
            // Count buckets of `size`; they are contiguous at the tail side
            // of all smaller-or-equal sizes because sizes are monotone from
            // front (largest) to back (smallest).
            let mut idx_first = None;
            let mut count = 0;
            for (i, b) in self.buckets.iter().enumerate() {
                if b.size == size {
                    if idx_first.is_none() {
                        idx_first = Some(i);
                    }
                    count += 1;
                }
            }
            if count <= limit {
                break;
            }
            // Merge the two *oldest* buckets of this size into one of 2×size.
            let i = idx_first.expect("count > 0 implies a first index");
            let merged = Bucket { time: self.buckets[i + 1].time, size: size * 2 };
            self.buckets.remove(i + 1);
            self.buckets[i] = merged;
            size *= 2;
        }
    }

    /// Estimated number of events in the window: the full sum minus half
    /// the oldest bucket (whose events may straddle the window edge).
    pub fn estimate(&self) -> u64 {
        match self.buckets.first() {
            None => 0,
            Some(oldest) => self.total - oldest.size / 2,
        }
    }

    /// Exact upper bound the histogram guarantees (all buckets whole).
    pub fn upper_bound(&self) -> u64 {
        self.total
    }

    /// Current number of buckets (memory proxy).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Memory footprint in bits: each bucket stores a timestamp and a size
    /// exponent (64 + 8 bits), as in the ECM paper's accounting.
    pub fn memory_bits(&self) -> usize {
        self.buckets.len() * (64 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replay `events` (times) and compare against the exact window count
    /// at time `t`.
    fn exact_count(events: &[u64], now: u64, window: u64) -> u64 {
        events.iter().filter(|&&e| e <= now && (now < window || e > now - window)).count() as u64
    }

    #[test]
    fn exact_while_few_events() {
        let mut eh = ExponentialHistogram::new(100, 4);
        for t in [1u64, 2, 3, 10, 50] {
            eh.record(t);
        }
        assert_eq!(eh.estimate(), 5);
    }

    #[test]
    fn expires_old_events() {
        let mut eh = ExponentialHistogram::new(10, 4);
        for t in 1..=5u64 {
            eh.record(t);
        }
        eh.advance_to(20);
        // Window (10, 20]: all five events (at 1..=5) are out.
        assert_eq!(eh.estimate(), 0);
    }

    #[test]
    fn relative_error_bound_dense_stream() {
        let window = 1000u64;
        let k = 8;
        let mut eh = ExponentialHistogram::new(window, k);
        let mut events = Vec::new();
        for t in 1..=5000u64 {
            if t % 3 != 0 {
                eh.record(t);
                events.push(t);
            } else {
                eh.advance_to(t);
            }
            if t % 500 == 0 && t > window {
                let exact = exact_count(&events, t, window);
                let est = eh.estimate();
                let re = (est as f64 - exact as f64).abs() / exact.max(1) as f64;
                assert!(re <= 1.0 / k as f64 + 0.01, "t={t} est={est} exact={exact} re={re}");
            }
        }
    }

    #[test]
    fn bucket_count_stays_logarithmic() {
        let mut eh = ExponentialHistogram::new(1 << 16, 4);
        for t in 1..=(1u64 << 16) {
            eh.record(t);
        }
        // (k+1) buckets per size, ~log2(N) sizes.
        assert!(eh.num_buckets() <= 5 * 17 + 5, "buckets: {}", eh.num_buckets());
        assert!(eh.memory_bits() > 0);
    }

    #[test]
    fn estimate_never_exceeds_upper_bound() {
        let mut eh = ExponentialHistogram::new(64, 2);
        for t in 1..=1000u64 {
            eh.record(t);
            assert!(eh.estimate() <= eh.upper_bound());
        }
    }

    #[test]
    fn sparse_bursts() {
        let mut eh = ExponentialHistogram::new(100, 4);
        // Burst of 50 at t=1..=50, silence, burst at t=200.
        for t in 1..=50u64 {
            eh.record(t);
        }
        for t in 200..=210u64 {
            eh.record(t);
        }
        // Window (110, 210]: only the second burst (11 events).
        let est = eh.estimate();
        assert!((est as i64 - 11).unsigned_abs() <= 2, "est {est}");
    }
}
