//! Exact sliding-window oracles.
//!
//! Every accuracy metric in the evaluation (FPR, RE, ARE, similarity RE) is
//! computed against these: a ring buffer of the last `N` keys plus a count
//! map, giving exact membership / frequency / cardinality, and a paired
//! variant for exact Jaccard similarity. Keys are `u64` — the workload
//! generators in `she-streams` produce `u64` keys (the paper's srcIP-style
//! 4-byte identifiers fit comfortably).

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, VecDeque};

/// Exact state of one count-based sliding window.
///
/// Counts live in a `BTreeMap` so iteration order is deterministic:
/// metrics that sample `iter_counts` must give the same answer on every
/// run (`HashMap`'s randomized ordering made sampled ARE flap).
#[derive(Debug, Clone)]
pub struct WindowTruth {
    window: usize,
    items: VecDeque<u64>,
    counts: BTreeMap<u64, u32>,
}

impl WindowTruth {
    /// Track the last `window` items exactly.
    pub fn new(window: usize) -> Self {
        assert!(window > 0);
        Self { window, items: VecDeque::with_capacity(window + 1), counts: BTreeMap::new() }
    }

    /// The window size `N`.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Insert the next item, evicting the one that slides out (returned).
    pub fn insert(&mut self, key: u64) -> Option<u64> {
        self.items.push_back(key);
        *self.counts.entry(key).or_insert(0) += 1;
        if self.items.len() > self.window {
            let old = self.items.pop_front().expect("non-empty after push");
            match self.counts.entry(old) {
                Entry::Occupied(mut e) => {
                    *e.get_mut() -= 1;
                    if *e.get() == 0 {
                        e.remove();
                    }
                }
                Entry::Vacant(_) => unreachable!("evicted key must be counted"),
            }
            Some(old)
        } else {
            None
        }
    }

    /// Exact membership: was `key` among the last `N` items?
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.counts.contains_key(&key)
    }

    /// Exact frequency of `key` within the window.
    #[inline]
    pub fn frequency(&self, key: u64) -> u32 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Exact number of distinct keys within the window.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.counts.len()
    }

    /// Number of items currently held (≤ `N`; smaller during warm-up).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True before any insertion.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate over the distinct keys in the window with their counts.
    pub fn iter_counts(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// Iterate over the raw window contents, oldest first.
    pub fn iter_items(&self) -> impl Iterator<Item = u64> + '_ {
        self.items.iter().copied()
    }
}

/// Exact state of a pair of aligned sliding windows (similarity tasks).
#[derive(Debug, Clone)]
pub struct PairTruth {
    a: WindowTruth,
    b: WindowTruth,
}

impl PairTruth {
    /// Track two windows of `window` items each.
    pub fn new(window: usize) -> Self {
        Self { a: WindowTruth::new(window), b: WindowTruth::new(window) }
    }

    /// Insert into the first stream.
    pub fn insert_a(&mut self, key: u64) {
        self.a.insert(key);
    }

    /// Insert into the second stream.
    pub fn insert_b(&mut self, key: u64) {
        self.b.insert(key);
    }

    /// The first window's oracle.
    pub fn a(&self) -> &WindowTruth {
        &self.a
    }

    /// The second window's oracle.
    pub fn b(&self) -> &WindowTruth {
        &self.b
    }

    /// Exact Jaccard similarity `|A∩B| / |A∪B|` of the distinct key sets of
    /// the two windows. Zero when both are empty.
    pub fn jaccard(&self) -> f64 {
        let (small, large) = if self.a.cardinality() <= self.b.cardinality() {
            (&self.a, &self.b)
        } else {
            (&self.b, &self.a)
        };
        let inter = small.iter_counts().filter(|&(k, _)| large.contains(k)).count();
        let union = self.a.cardinality() + self.b.cardinality() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_eviction() {
        let mut w = WindowTruth::new(3);
        assert_eq!(w.insert(1), None);
        assert_eq!(w.insert(2), None);
        assert_eq!(w.insert(3), None);
        assert_eq!(w.insert(4), Some(1));
        assert!(!w.contains(1));
        assert!(w.contains(2) && w.contains(3) && w.contains(4));
        assert_eq!(w.cardinality(), 3);
    }

    #[test]
    fn duplicate_counting() {
        let mut w = WindowTruth::new(4);
        for k in [7, 7, 8, 7] {
            w.insert(k);
        }
        assert_eq!(w.frequency(7), 3);
        assert_eq!(w.frequency(8), 1);
        assert_eq!(w.cardinality(), 2);
        // Slide one 7 out.
        w.insert(9);
        assert_eq!(w.frequency(7), 2);
        assert_eq!(w.cardinality(), 3);
    }

    #[test]
    fn matches_naive_replay() {
        // Pseudo-random stream vs an O(N) naive recomputation.
        let window = 50;
        let mut w = WindowTruth::new(window);
        let mut all = Vec::new();
        let mut x = 12345u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 37;
            w.insert(key);
            all.push(key);
            let tail: Vec<u64> = all.iter().rev().take(window).copied().collect();
            let distinct: std::collections::HashSet<u64> = tail.iter().copied().collect();
            assert_eq!(w.cardinality(), distinct.len());
            for &k in &distinct {
                assert_eq!(w.frequency(k) as usize, tail.iter().filter(|&&t| t == k).count());
            }
        }
    }

    #[test]
    fn jaccard_extremes() {
        let mut p = PairTruth::new(10);
        assert_eq!(p.jaccard(), 0.0);
        for i in 0..10u64 {
            p.insert_a(i);
            p.insert_b(i);
        }
        assert_eq!(p.jaccard(), 1.0);
        for i in 0..10u64 {
            p.insert_b(i + 100);
        }
        assert_eq!(p.jaccard(), 0.0);
    }

    #[test]
    fn jaccard_partial() {
        let mut p = PairTruth::new(4);
        for k in [1u64, 2, 3, 4] {
            p.insert_a(k);
        }
        for k in [3u64, 4, 5, 6] {
            p.insert_b(k);
        }
        // |∩| = 2 ({3,4}), |∪| = 6.
        assert!((p.jaccard() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_length() {
        let mut w = WindowTruth::new(100);
        assert!(w.is_empty());
        for i in 0..10u64 {
            w.insert(i);
        }
        assert_eq!(w.len(), 10);
        assert_eq!(w.iter_items().count(), 10);
        assert_eq!(w.iter_counts().count(), 10);
    }
}
