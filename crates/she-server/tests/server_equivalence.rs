//! End-to-end server tests over real localhost TCP on an ephemeral port:
//! the served answers must be *bit-identical* to a direct in-process
//! engine fed the same stream, and the lifecycle (backpressure, drain,
//! shutdown) must hold up under load.

use she_server::{loadgen, Client, EngineConfig, LoadgenConfig, Mode, Server, ServerConfig};

fn start_server(engine: EngineConfig) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine,
        queue_capacity: 64,
        retry_after_ms: 1,
        ..Default::default()
    })
    .expect("bind ephemeral port")
}

/// The acceptance-style run at test scale: 100k Zipf items, interleaved
/// queries of all four classes, every answer checked against the mirror.
#[test]
fn server_matches_direct_engine_on_zipf_stream() {
    let engine = EngineConfig { window: 1 << 14, shards: 4, memory_bytes: 64 << 10, seed: 11 };
    let server = start_server(engine);
    let cfg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        items: 100_000,
        batch: 256,
        queries: 400,
        mode: Mode::Closed,
        universe: 50_000,
        skew: 1.05,
        seed: 42,
        sim_every: 8,
        verify: Some(engine),
        ..Default::default()
    };
    let summary = loadgen::run(&cfg).expect("loadgen transport");
    assert_eq!(summary.insert.items, 100_000);
    assert_eq!(summary.query.ops, 400);
    assert_eq!(summary.verified, 400, "every query must be checked");
    assert_eq!(summary.mismatches, 0, "server diverged from direct engine");

    let stats = server.join();
    assert_eq!(stats.len(), 4);
    let total: u64 = stats.iter().map(|s| s.inserts).sum();
    assert_eq!(total, 100_000, "drain must apply every enqueued item");
}

/// Same stream, two speakers: per-key routing means a second connection's
/// disjoint traffic does not perturb single-connection determinism checks
/// done *after* both connections quiesce.
#[test]
fn stats_reflect_all_connections() {
    let engine = EngineConfig { window: 1 << 10, shards: 2, memory_bytes: 8 << 10, seed: 5 };
    let server = start_server(engine);
    let addr = server.local_addr();

    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    a.insert_batch(0, &(0..500u64).collect::<Vec<_>>()).unwrap();
    b.insert_batch(0, &(500..1000u64).collect::<Vec<_>>()).unwrap();
    // A query fans out behind both connections' enqueued inserts.
    let card = a.query_card().unwrap();
    assert!(card > 0.0);
    let stats = a.stats().unwrap();
    assert_eq!(stats.iter().map(|s| s.inserts).sum::<u64>(), 1000);
    drop(a);
    drop(b);
    server.join();
}

/// Wire-level shutdown: the server answers, drains, and the port closes.
#[test]
fn wire_shutdown_drains_and_stops() {
    let engine = EngineConfig { window: 1 << 10, shards: 2, memory_bytes: 8 << 10, seed: 6 };
    let server = start_server(engine);
    let addr = server.local_addr();

    let mut c = Client::connect(addr).unwrap();
    c.insert_batch(0, &(0..2048u64).collect::<Vec<_>>()).unwrap();
    c.shutdown().unwrap();
    drop(c);

    let stats = server.join();
    assert_eq!(stats.iter().map(|s| s.inserts).sum::<u64>(), 2048);
    // The listener is gone: a fresh connection must fail (allow the OS a
    // moment to tear the socket down).
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(std::net::TcpStream::connect(addr).is_err(), "port still accepting");
}

/// Malformed frames get an ERR response, and the connection survives to
/// serve well-formed requests afterwards.
#[test]
fn malformed_frame_gets_err_not_hangup() {
    use she_server::codec::{read_frame, write_frame};
    use she_server::protocol::{Request, Response};

    let engine = EngineConfig { window: 1 << 10, shards: 1, memory_bytes: 4 << 10, seed: 7 };
    let server = start_server(engine);
    let mut sock = std::net::TcpStream::connect(server.local_addr()).unwrap();

    write_frame(&mut sock, &[0xFFu8, 1, 2, 3]).unwrap();
    let resp = Response::decode(&read_frame(&mut sock).unwrap().unwrap()).unwrap();
    assert!(matches!(resp, Response::Err(_)), "got {resp:?}");

    write_frame(&mut sock, &Request::QueryCard.encode()).unwrap();
    let resp = Response::decode(&read_frame(&mut sock).unwrap().unwrap()).unwrap();
    assert!(matches!(resp, Response::F64(_)), "got {resp:?}");

    drop(sock);
    server.join();
}

/// Open-loop pacing delivers the same items (and the same answers) as
/// closed-loop — pacing must not change what is applied.
#[test]
fn open_loop_mode_applies_the_same_stream() {
    let engine = EngineConfig { window: 1 << 12, shards: 2, memory_bytes: 16 << 10, seed: 9 };
    let server = start_server(engine);
    let cfg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        items: 20_000,
        batch: 500,
        queries: 40,
        mode: Mode::Open { items_per_sec: 2_000_000.0 },
        universe: 10_000,
        skew: 1.05,
        seed: 3,
        sim_every: 4,
        verify: Some(engine),
        ..Default::default()
    };
    let summary = loadgen::run(&cfg).expect("loadgen transport");
    assert_eq!(summary.mismatches, 0);
    assert_eq!(summary.insert.items, 20_000);
    server.join();
}

/// Multi-connection fan-out delivers the full item and query budgets,
/// counts every connection's backpressure retries, and merges the
/// per-connection latency histograms into one report.
#[test]
fn multi_connection_loadgen_aggregates() {
    let engine = EngineConfig { window: 1 << 12, shards: 2, memory_bytes: 16 << 10, seed: 13 };
    let server = start_server(engine);
    let cfg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        // Not divisible by 3: the remainder must still be delivered.
        items: 10_001,
        batch: 128,
        queries: 50,
        universe: 10_000,
        seed: 21,
        connections: 3,
        // Reads from a second address — here the same server, standing in
        // for a replica (the read-scaling path is exercised end to end in
        // scripts/check.sh with a real replica).
        read_from: Some(server.local_addr().to_string()),
        ..Default::default()
    };
    let summary = loadgen::run(&cfg).expect("loadgen transport");
    assert_eq!(summary.insert.items, 10_001);
    assert_eq!(summary.query.ops, 50);
    assert_eq!(summary.insert.latency.count(), summary.insert.ops);
    assert_eq!(summary.query.latency.count(), 50);
    assert_eq!(summary.insert.retries, summary.busy_retries);

    let stats = server.join();
    assert_eq!(stats.iter().map(|s| s.inserts).sum::<u64>(), 10_001);
}

/// Verification is a single-connection contract.
#[test]
fn verify_refuses_fanout_and_replica_reads() {
    let engine = EngineConfig { window: 1 << 10, shards: 2, memory_bytes: 8 << 10, seed: 5 };
    let server = start_server(engine);
    let base = LoadgenConfig {
        addr: server.local_addr().to_string(),
        items: 100,
        queries: 4,
        verify: Some(engine),
        ..Default::default()
    };

    let fanout = LoadgenConfig { connections: 4, ..base.clone() };
    let err = loadgen::run(&fanout).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{err}");

    let replica_reads = LoadgenConfig { read_from: Some(server.local_addr().to_string()), ..base };
    let err = loadgen::run(&replica_reads).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{err}");

    server.join();
}
