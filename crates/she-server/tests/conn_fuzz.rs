//! Property tests for the sans-IO [`Connection`] — the protocol core the
//! epoll reactor is built on — with **zero sockets**: raw byte slices in,
//! typed events out, the output queue drained through arbitrary partial
//! "writes".

use she_server::protocol::{Request, Response, MAX_FRAME};
use she_server::{Connection, Event, FrameEvent};

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut b = u32::try_from(payload.len()).unwrap().to_le_bytes().to_vec();
    b.extend_from_slice(payload);
    b
}

/// A tiny deterministic RNG so the torn-input schedules replay.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn sample_requests() -> Vec<Request> {
    vec![
        Request::Insert { stream: 0, key: 7 },
        Request::InsertBatch { stream: 1, keys: (0..100).collect() },
        Request::QueryMember { key: u64::MAX },
        Request::QueryCard,
        Request::QueryFreq { key: 0 },
        Request::QuerySim,
        Request::QueryBatch { op: 0, keys: vec![1, 2, 3] },
        Request::QueryBatch { op: 2, keys: vec![] },
        Request::Stats,
        Request::Hello { version: 4 },
        Request::Snapshot { shard: 3 },
        Request::ReplSubscribe { from_seq: 9, node_id: 0 },
        Request::Shutdown,
    ]
}

#[test]
fn every_split_of_every_request_decodes_identically() {
    for req in sample_requests() {
        let bytes = frame(&req.encode());
        for split in 0..=bytes.len() {
            let mut c = Connection::new();
            c.feed(&bytes[..split], 0);
            c.feed(&bytes[split..], 1);
            match c.poll() {
                Event::Request(got) => assert_eq!(got, req, "split at {split}"),
                other => panic!("split at {split} of {req:?}: {other:?}"),
            }
            assert_eq!(c.poll(), Event::NeedMore);
        }
    }
}

#[test]
fn seeded_torn_streams_reassemble_the_exact_request_sequence() {
    for seed in 0..20u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let reqs: Vec<Request> = (0..64)
            .map(|i| match rng.next() % 4 {
                0 => Request::Insert { stream: 0, key: rng.next() },
                1 => Request::InsertBatch {
                    stream: 1,
                    keys: (0..rng.next() % 50).map(|_| rng.next()).collect(),
                },
                2 => Request::QueryFreq { key: i },
                _ => Request::QueryCard,
            })
            .collect();
        let mut stream = Vec::new();
        for r in &reqs {
            stream.extend_from_slice(&frame(&r.encode()));
        }
        let mut c = Connection::new();
        let mut got = Vec::new();
        let mut fed = 0;
        while fed < stream.len() {
            let n = 1 + (rng.next() as usize) % 33;
            let end = (fed + n).min(stream.len());
            c.feed(&stream[fed..end], fed as u64);
            fed = end;
            loop {
                match c.poll() {
                    Event::Request(r) => got.push(r),
                    Event::NeedMore => break,
                    other => panic!("seed {seed}: unexpected {other:?}"),
                }
            }
        }
        assert_eq!(got, reqs, "seed {seed}");
        assert!(!c.has_buffered_input(), "seed {seed}: no residue");
    }
}

#[test]
fn bit_flipped_streams_never_panic() {
    // Flip every single bit of a small multi-frame stream, one at a time,
    // and drive the whole thing through. Any outcome is acceptable except
    // a panic or a payload from a fatal stream.
    let mut stream = Vec::new();
    for r in
        [Request::Insert { stream: 0, key: 1 }, Request::QueryCard, Request::Hello { version: 4 }]
    {
        stream.extend_from_slice(&frame(&r.encode()));
    }
    for bit in 0..stream.len() * 8 {
        let mut s = stream.clone();
        s[bit / 8] ^= 1 << (bit % 8);
        let mut c = Connection::new();
        c.feed(&s, 0);
        let mut fatal = false;
        loop {
            match c.poll() {
                Event::Request(_) | Event::Bad(_) => {
                    assert!(!fatal, "bit {bit}: event after fatal");
                }
                Event::NeedMore => break,
                Event::Fatal => {
                    fatal = true;
                    break;
                }
            }
        }
        assert_eq!(fatal, c.is_fatal(), "bit {bit}: sticky flag mismatch");
    }
}

#[test]
fn output_queue_reemits_identical_frames_under_any_write_schedule() {
    let responses = [
        Response::Ok { accepted: 42 },
        Response::Bool(true),
        Response::F64(0.5),
        Response::U64s(vec![9, 8, 7]),
        Response::Err("nope".to_string()),
        Response::Stats(Vec::new()),
    ];
    let mut expect = Vec::new();
    for r in &responses {
        expect.extend_from_slice(&frame(&r.encode()));
    }
    for seed in 0..20u64 {
        let mut rng = Lcg(seed | 1);
        let mut c = Connection::new();
        for r in &responses {
            c.push_response(r);
        }
        assert_eq!(c.out_bytes(), expect.len());
        let mut written = Vec::new();
        while c.has_output() {
            let n = 1 + (rng.next() as usize) % 17;
            let take: Vec<u8> = c.out_slices().flatten().copied().take(n).collect();
            written.extend_from_slice(&take);
            c.advance_out(take.len());
        }
        assert_eq!(written, expect, "seed {seed}: byte-identical re-emission");
    }
}

#[test]
fn oversize_prefix_is_fatal_before_any_allocation_sized_by_it() {
    let mut c = Connection::new();
    let huge = u32::try_from(MAX_FRAME + 1).unwrap();
    c.feed(&huge.to_le_bytes(), 0);
    assert_eq!(c.poll_frame(), FrameEvent::Fatal);
    assert!(c.is_fatal());
    // Sticky across later feeds.
    c.feed(&frame(&Request::QueryCard.encode()), 1);
    assert_eq!(c.poll_frame(), FrameEvent::Fatal);
}

#[test]
fn pipelined_requests_interleave_with_responses_in_fifo_order() {
    // The reactor dispatches one request at a time; the state machine
    // must hold pipelined frames intact while responses queue up.
    let mut c = Connection::new();
    let mut bytes = Vec::new();
    for key in 0..10u64 {
        bytes.extend_from_slice(&frame(&Request::QueryFreq { key }.encode()));
    }
    c.feed(&bytes, 0);
    for key in 0..10u64 {
        assert_eq!(c.poll(), Event::Request(Request::QueryFreq { key }));
        c.push_response(&Response::U64(key * 2));
    }
    assert_eq!(c.poll(), Event::NeedMore);
    let written: Vec<u8> = c.out_slices().flatten().copied().collect();
    let total = c.out_bytes();
    c.advance_out(total);
    let mut expect = Vec::new();
    for key in 0..10u64 {
        expect.extend_from_slice(&frame(&Response::U64(key * 2).encode()));
    }
    assert_eq!(written, expect);
    assert!(!c.has_output());
}
