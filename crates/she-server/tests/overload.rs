//! Overload-degradation and connection-hygiene tests: reads shed with
//! `OVERLOADED` when a shard queue is saturated, excess connections are
//! refused at the door, and a client stalled mid-frame is evicted within
//! the configured deadline instead of pinning a handler thread forever.

use she_server::codec::{read_frame, write_frame};
use she_server::protocol::{Request, Response};
use she_server::{Client, EngineConfig, Server, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn small_engine() -> EngineConfig {
    EngineConfig { window: 1 << 12, shards: 1, memory_bytes: 16 << 10, seed: 1 }
}

/// Raw request/response round trip over an existing socket (the typed
/// `Client` retries `BUSY`/`OVERLOADED`, which would mask what this file
/// is testing).
fn raw_call(sock: &mut TcpStream, req: &Request) -> Response {
    write_frame(sock, &req.encode()).unwrap();
    let payload = read_frame(sock).unwrap().expect("server closed unexpectedly");
    Response::decode(&payload).unwrap()
}

/// With one shard, a queue of depth 1, and the worker wedged on a huge
/// batch, a read must come back `OVERLOADED` immediately — not block
/// behind the write backlog, not `BUSY` (that's the write-side answer).
#[test]
fn saturated_queue_sheds_reads_as_overloaded() {
    let server = Server::start(ServerConfig {
        engine: small_engine(),
        queue_capacity: 1,
        retry_after_ms: 7,
        ..Default::default()
    })
    .unwrap();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();

    // Batch A: admitted, worker starts chewing (hundreds of ms in a
    // debug build). Batch B: fills the queue's single slot. (Batches are
    // bounded by MAX_BATCH ≈ 131k keys.)
    let big: Vec<u64> = (0..120_000u64).collect();
    for _ in 0..2 {
        let resp = raw_call(&mut sock, &Request::InsertBatch { stream: 0, keys: big.clone() });
        assert!(matches!(resp, Response::Ok { .. }), "{resp:?}");
    }
    // The queue is now full: the read must shed, with the configured
    // retry hint, while the insert path still owns the next free slot.
    let t0 = Instant::now();
    let resp = raw_call(&mut sock, &Request::QueryMember { key: 1 });
    assert!(
        matches!(resp, Response::Overloaded { retry_after_ms: 7 }),
        "expected OVERLOADED with the retry hint, got {resp:?}"
    );
    assert!(t0.elapsed() < Duration::from_millis(100), "shed must not block behind the backlog");
    assert_eq!(server.counters().snapshot().shed_reads, 1);

    server.shutdown();
    server.join();
}

/// The typed client's retry loop turns a shed read into a correct answer
/// once the backlog drains — callers see latency, not failure.
#[test]
fn client_retries_shed_reads_to_completion() {
    let server = Server::start(ServerConfig {
        engine: small_engine(),
        queue_capacity: 1,
        retry_after_ms: 1,
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_op_timeout(Some(Duration::from_secs(30))).unwrap();
    // Small enough that the backlog drains inside the client's bounded
    // retry budget, big enough that the first read usually sheds.
    let big: Vec<u64> = (0..40_000u64).collect();
    client.insert_batch(0, &big).unwrap();
    client.insert_batch(0, &big).unwrap();
    // The answer reflects every admitted insert, shed retries included.
    // Query the stream's last key — early keys have slid out of the
    // 4096-item window by now.
    let last = *big.last().unwrap();
    assert!(client.query_member(last).unwrap(), "key {last} is inside the sliding window");
    server.shutdown();
    server.join();
}

/// Connections past `max_connections` get one `OVERLOADED` frame and a
/// close — they never tie up a handler thread.
#[test]
fn connection_cap_refuses_with_overloaded() {
    let server = Server::start(ServerConfig {
        engine: small_engine(),
        max_connections: 1,
        retry_after_ms: 3,
        ..Default::default()
    })
    .unwrap();
    // First connection: completes a round trip, so its handler (and the
    // accept-loop bookkeeping) is live before the second connect.
    let mut first = Client::connect(server.local_addr()).unwrap();
    first.hello().unwrap();

    let mut second = TcpStream::connect(server.local_addr()).unwrap();
    second.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let payload = read_frame(&mut second).unwrap().expect("expected a refusal frame, got EOF");
    let resp = Response::decode(&payload).unwrap();
    assert!(matches!(resp, Response::Overloaded { .. }), "{resp:?}");
    // And the socket is closed right after.
    assert!(matches!(read_frame(&mut second), Ok(None) | Err(_)));
    assert_eq!(server.counters().snapshot().refused_conns, 1);

    // When the first client leaves, the slot frees up.
    drop(first);
    let ok = (0..50).any(|_| {
        std::thread::sleep(Duration::from_millis(20));
        Client::connect(server.local_addr()).and_then(|mut c| c.hello()).is_ok()
    });
    assert!(ok, "slot must be released when a connection ends");

    server.shutdown();
    server.join();
}

/// A client that announces a frame and goes silent is evicted within the
/// deadline; an idle client (no frame started) is left alone.
#[test]
fn stalled_client_is_evicted_but_idle_client_is_not() {
    let server = Server::start(ServerConfig {
        engine: small_engine(),
        client_deadline_ms: 300,
        ..Default::default()
    })
    .unwrap();

    // Idle connection: never sends a byte. Must still be alive later.
    let mut idle = Client::connect(server.local_addr()).unwrap();

    // Stalled connection: 4-byte header promising 100 bytes, then nothing.
    let mut stalled = TcpStream::connect(server.local_addr()).unwrap();
    stalled.write_all(&100u32.to_le_bytes()).unwrap();
    stalled.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let t0 = Instant::now();
    // The server closes the connection: read returns EOF (or a reset).
    let got = read_frame(&mut stalled);
    assert!(matches!(got, Ok(None) | Err(_)), "expected eviction, got {got:?}");
    let waited = t0.elapsed();
    assert!(waited < Duration::from_secs(5), "eviction took {waited:?}, deadline is 300ms");
    assert_eq!(server.counters().snapshot().evicted_conns, 1);

    // The idle client was not evicted and still works.
    assert!(idle.hello().is_ok(), "idle connection must survive");

    server.shutdown();
    server.join();
}
