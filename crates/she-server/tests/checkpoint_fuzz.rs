//! Fuzz-style tests for `Checkpoint::decode`: any corruption a torn
//! write or bit rot can produce must surface as a clean `Err`, never a
//! panic and never a silently-wrong checkpoint. This is the restore-time
//! guarantee the quarantine path in `she serve --restore` and the chaos
//! soak's torn-write check both build on.

use she_server::{Checkpoint, DirectEngine, EngineConfig};

/// A populated engine's checkpoint — realistic section sizes, all four
/// structures non-trivial.
fn sample_checkpoint() -> Vec<u8> {
    let mut engine =
        DirectEngine::new(EngineConfig { window: 512, shards: 3, memory_bytes: 16 << 10, seed: 7 });
    for i in 0..2_000u64 {
        engine.insert((i % 3 == 0) as u8, i % 700);
    }
    engine.checkpoint()
}

#[test]
fn valid_checkpoint_decodes() {
    let blob = sample_checkpoint();
    let ckpt = Checkpoint::decode(&blob).expect("pristine checkpoint decodes");
    assert_eq!(ckpt.cfg.shards, 3);
    assert_eq!(ckpt.shards.len(), 3);
}

/// Every strict prefix — every possible torn write — errors cleanly.
#[test]
fn every_truncation_errors_cleanly() {
    let blob = sample_checkpoint();
    for cut in 0..blob.len() {
        assert!(
            Checkpoint::decode(&blob[..cut]).is_err(),
            "torn checkpoint ({cut} of {} bytes) must not decode",
            blob.len()
        );
    }
}

/// Systematic single-bit flips over the whole blob: each one must error
/// (the frame checksum covers every byte). Large blobs are sampled on a
/// stride to keep the test fast while still touching every region.
#[test]
fn every_single_bit_flip_is_detected() {
    let blob = sample_checkpoint();
    let stride = (blob.len() / 2_048).max(1);
    for byte in (0..blob.len()).step_by(stride) {
        for bit in 0..8 {
            let mut bad = blob.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "flip of byte {byte} bit {bit} went undetected"
            );
        }
    }
}

/// Flips in the length-prefix region are the nastiest (they change how
/// much the parser *tries* to read) — cover the header densely.
#[test]
fn header_region_bit_flips_never_panic() {
    let blob = sample_checkpoint();
    for byte in 0..blob.len().min(64) {
        for bit in 0..8 {
            let mut bad = blob.clone();
            bad[byte] ^= 1 << bit;
            assert!(Checkpoint::decode(&bad).is_err(), "header flip byte {byte} bit {bit}");
        }
    }
}

/// Garbage of assorted sizes — including huge claimed lengths — errors
/// without allocating absurd buffers or panicking.
#[test]
fn arbitrary_garbage_errors_cleanly() {
    for n in [0usize, 1, 3, 4, 7, 8, 64, 4096] {
        let garbage: Vec<u8> = (0..n).map(|i| (i * 37 + 11) as u8).collect();
        assert!(Checkpoint::decode(&garbage).is_err(), "{n} bytes of garbage");
    }
    // All 0xFF: maximal claimed lengths everywhere.
    assert!(Checkpoint::decode(&vec![0xFF; 256]).is_err());
}

/// A truncated-then-padded blob (torn write over an older, longer file —
/// the exact shape a non-atomic rewrite leaves behind) is detected.
#[test]
fn torn_over_old_contents_is_detected() {
    let blob = sample_checkpoint();
    let mut engine =
        DirectEngine::new(EngineConfig { window: 512, shards: 3, memory_bytes: 16 << 10, seed: 8 });
    for i in 0..4_000u64 {
        engine.insert(0, i % 900);
    }
    let old = engine.checkpoint();
    // New blob's prefix lands over a longer old file: tail is stale data.
    let cut = blob.len() / 2;
    let mut torn = blob[..cut].to_vec();
    if old.len() > cut {
        torn.extend_from_slice(&old[cut..]);
    }
    assert!(Checkpoint::decode(&torn).is_err(), "half-new half-old file must not decode");
}
