//! End-to-end tests for the v5 read path over real localhost TCP: at
//! quiescence `QUERY_FAST` answers must agree with the authoritative
//! `QUERY` path, the mark cache must actually hit, and the loadgen's
//! read-heavy profile must surface a server-side hit rate.

use she_server::{
    loadgen, Client, EngineConfig, LoadgenConfig, Mode, ReadPathConfig, Server, ServerConfig,
};
use std::time::{Duration, Instant};

fn start_readpath_server(engine: EngineConfig) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine,
        repl_log: 16_384,
        readpath: Some(ReadPathConfig::default()),
        ..Default::default()
    })
    .expect("bind ephemeral port")
}

/// Block until the mirror's applied sequence catches the op-log head and
/// both stop moving (no in-flight inserts, refresher drained).
fn wait_quiescent(c: &mut Client) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let a = c.cluster_status().expect("status");
        assert!(a.readpath.enabled, "server must report the read path as enabled");
        std::thread::sleep(Duration::from_millis(50));
        let b = c.cluster_status().expect("status");
        if a.head == b.head && b.readpath.seq >= b.head {
            return;
        }
        assert!(Instant::now() < deadline, "read mirror never caught the log head");
    }
}

/// The core staleness-bound contract at its strongest point: once the
/// stream quiesces, fast answers are bit-for-bit the authoritative
/// answers, and the second ask of every key is a signature-checked hit.
#[test]
fn query_fast_matches_authoritative_at_quiescence() {
    let engine = EngineConfig { window: 1 << 14, shards: 4, memory_bytes: 64 << 10, seed: 11 };
    let server = start_readpath_server(engine);
    let mut c = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(c.hello().expect("hello"), 6);

    // A skewed stream: hot keys present, cold keys absent.
    let keys: Vec<u64> = (0..20_000u64).map(|i| she_hash::mix64(i % 3_000)).collect();
    for chunk in keys.chunks(512) {
        c.insert_batch(0, chunk).expect("insert");
    }
    wait_quiescent(&mut c);

    let before = c.cluster_status().expect("status").readpath;
    let mut probed = 0u64;
    for i in 0..256u64 {
        // Half the probes are inserted keys, half drawn outside the universe.
        let key = if i % 2 == 0 { she_hash::mix64(i) } else { she_hash::mix64(1 << 40 | i) };
        for _ in 0..2 {
            assert_eq!(
                c.fast_member(key).expect("fast member"),
                c.query_member(key).expect("member"),
                "member disagreement on key {key:#x}"
            );
            assert_eq!(
                c.fast_freq(key).expect("fast freq"),
                c.query_freq(key).expect("freq"),
                "freq disagreement on key {key:#x}"
            );
        }
        probed += 1;
    }
    let after = c.cluster_status().expect("status").readpath;
    let hits = after.hits - before.hits;
    // Each key is asked twice per op class: the second ask must be a hit
    // (authoritative queries touch the workers, never the mirror, so the
    // mark signature cannot move between the two asks).
    assert!(hits >= 2 * probed, "expected ≥{} cache hits, saw {hits}", 2 * probed);

    // Top-k comes back as (key, estimate) pairs with sane estimates.
    let top = c.fast_topk(8).expect("fast topk");
    assert!(!top.is_empty() && top.len() <= 8, "topk size {}", top.len());
    for &(key, est) in &top {
        assert!(est >= 1, "top-k key {key:#x} with zero estimate");
    }

    c.shutdown().expect("shutdown");
    drop(c);
    server.wait();
}

/// The other half of the staleness bound: entries cached *mid-stream*
/// keep serving their fill-time answer after more inserts arrive (no
/// relevant mark flip ⇒ still valid, but lagging). The bound must hold
/// at quiescence — fast freq never above authoritative, fast
/// member-true never wrong — and a FLUSH must restore bit-for-bit
/// equality. This is exactly the scenario a 95/5 loadgen run leaves
/// behind for `she fastcheck`.
#[test]
fn warm_cache_respects_bound_and_flush_restores_exactness() {
    let engine = EngineConfig { window: 1 << 14, shards: 2, memory_bytes: 32 << 10, seed: 23 };
    let server = start_readpath_server(engine);
    let mut c = Client::connect(server.local_addr()).expect("connect");

    let hot: Vec<u64> = (0..64u64).map(she_hash::mix64).collect();
    c.insert_batch(0, &hot).expect("insert");
    wait_quiescent(&mut c);

    // Warm the cache at count 1 per key...
    for &key in &hot {
        let _ = c.fast_member(key).expect("fast member");
        assert_eq!(c.fast_freq(key).expect("fast freq"), 1);
    }
    // ...then insert each hot key 8 more times behind the cache's back.
    for _ in 0..8 {
        c.insert_batch(0, &hot).expect("insert");
    }
    wait_quiescent(&mut c);

    let mut lagging = 0u64;
    for &key in &hot {
        let fast = c.fast_freq(key).expect("fast freq");
        let auth = c.query_freq(key).expect("freq");
        assert!(fast <= auth, "bound violated: fast {fast} > authoritative {auth}");
        assert!(
            !c.fast_member(key).expect("fast member") || c.query_member(key).expect("member"),
            "bound violated: fast member true, authoritative false for {key:#x}"
        );
        if fast < auth {
            lagging += 1;
        }
    }
    // The point of the scenario: most warm entries survived the inserts
    // (no mark flip) and still answer their fill-time count.
    assert!(lagging > 0, "expected warm entries to lag the new inserts");

    c.fast_flush().expect("flush");
    for &key in &hot {
        assert_eq!(
            c.fast_freq(key).expect("fast freq"),
            c.query_freq(key).expect("freq"),
            "post-flush fill must be exact for {key:#x}"
        );
    }

    c.shutdown().expect("shutdown");
    drop(c);
    server.wait();
}

/// Without `readpath` in the config the op must fail cleanly (an ERR
/// frame, not a hangup), and the connection stays usable.
#[test]
fn query_fast_errs_when_readpath_is_off() {
    let engine = EngineConfig { window: 1 << 10, shards: 2, memory_bytes: 8 << 10, seed: 3 };
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine,
        ..Default::default()
    })
    .expect("bind");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    c.insert_batch(0, &[1, 2, 3]).expect("insert");
    assert!(c.fast_member(1).is_err(), "QUERY_FAST must fail without --readpath");
    // The connection survives the refusal.
    let _ = c.query_card().expect("authoritative path still up");
    let status = c.cluster_status().expect("status");
    assert!(!status.readpath.enabled);
    drop(c);
    server.join();
}

/// The read-heavy loadgen profile end to end: interleaved QUERY_FAST
/// traffic flows, and the summary carries a real server-side hit rate.
#[test]
fn loadgen_read_heavy_profile_reports_hit_rate() {
    let engine = EngineConfig { window: 1 << 12, shards: 2, memory_bytes: 16 << 10, seed: 7 };
    let server = start_readpath_server(engine);
    let cfg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        items: 4_000,
        batch: 128,
        queries: 0,
        mode: Mode::Closed,
        universe: 2_000,
        skew: 1.05,
        seed: 9,
        read_ratio: 0.75,
        read_skew: 1.2,
        ..Default::default()
    };
    let summary = loadgen::run(&cfg).expect("loadgen");
    assert_eq!(summary.insert.items, 4_000);
    // 0.75 reads per (reads+items) → 3 reads per item.
    assert_eq!(summary.fast.ops, 12_000);
    assert_eq!(summary.fast.latency.count(), summary.fast.ops);
    let rate = summary.fast_hit_rate.expect("hit rate must be measured");
    assert!(
        (0.0..=1.0).contains(&rate) && rate > 0.0,
        "zipfian re-reads must hit the mark cache: rate {rate}"
    );

    let mut c = Client::connect(server.local_addr()).expect("connect");
    c.shutdown().expect("shutdown");
    drop(c);
    server.wait();
}

/// `--verify` and the fast-read profile are mutually exclusive by
/// contract: mid-stream fast answers are bounded, not bit-for-bit.
#[test]
fn loadgen_refuses_verify_with_read_ratio() {
    let engine = EngineConfig { window: 1 << 10, shards: 2, memory_bytes: 8 << 10, seed: 5 };
    let server = start_readpath_server(engine);
    let cfg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        items: 100,
        read_ratio: 0.5,
        verify: Some(engine),
        ..Default::default()
    };
    let err = loadgen::run(&cfg).expect_err("verify + read_ratio must refuse");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{err}");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    c.shutdown().expect("shutdown");
    server.wait();
}
