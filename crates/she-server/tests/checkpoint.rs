//! End-to-end checkpoint/restore coverage: a loaded server checkpointed
//! over the wire, killed, and restarted from the checkpoint must answer
//! every query bit-for-bit identically; restarting at a different shard
//! count must succeed via snapshot merge and preserve each structure's
//! one-sided guarantee.

use she_hash::mix64;
use she_server::{Checkpoint, Client, DirectEngine, EngineConfig, Server, ServerConfig};

const N_KEYS: u64 = 10_000;

fn test_cfg(shards: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig { window: 1 << 16, shards, memory_bytes: 64 << 10, seed: 3 },
        ..Default::default()
    }
}

fn load(client: &mut Client) {
    let keys: Vec<u64> = (0..N_KEYS).map(mix64).collect();
    client.insert_batch(0, &keys).expect("insert A");
    // Stream B overlaps half of A so similarity is informative.
    let keys_b: Vec<u64> = (N_KEYS / 2..3 * N_KEYS / 2).map(mix64).collect();
    client.insert_batch(1, &keys_b).expect("insert B");
}

/// The full query battery, as raw bits for f64 answers.
fn answers(client: &mut Client) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for i in 0..64u64 {
        let key = mix64(N_KEYS - 1 - i); // definitely in-window
        out.push((format!("member {key}"), client.query_member(key).unwrap() as u64));
        out.push((format!("freq {key}"), client.query_freq(key).unwrap()));
    }
    for i in 0..16u64 {
        let key = mix64(u64::MAX - i); // almost certainly absent
        out.push((format!("member- {key}"), client.query_member(key).unwrap() as u64));
    }
    out.push(("card".into(), client.query_card().unwrap().to_bits()));
    out.push(("sim".into(), client.query_sim().unwrap().to_bits()));
    out
}

#[test]
fn hello_negotiates_v6() {
    let server = Server::start(test_cfg(2)).expect("start");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(client.hello().expect("hello"), 6);
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn checkpoint_restart_answers_bit_for_bit() {
    let server = Server::start(test_cfg(4)).expect("start");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    load(&mut client);

    // Checkpoint BEFORE querying: queries advance the lazy cleaning
    // deterministically, so the restored server must replay the same
    // query sequence from the same state to answer identically.
    let ckpt_bytes = client.snapshot_all().expect("snapshot_all");
    let before = answers(&mut client);
    client.shutdown().expect("shutdown");
    server.wait();

    let ckpt = Checkpoint::decode(&ckpt_bytes).expect("decode checkpoint");
    assert_eq!(ckpt.cfg.shards, 4);
    let (cfg, engines) = ckpt.build_engines(4).expect("build engines");
    let server2 = Server::start_with_engines(ServerConfig { engine: cfg, ..test_cfg(4) }, engines)
        .expect("restart");
    let mut client2 = Client::connect(server2.local_addr()).expect("connect 2");
    let after = answers(&mut client2);
    assert_eq!(before, after, "restored server diverged");
    client2.shutdown().expect("shutdown 2");
    server2.wait();
}

#[test]
fn restore_over_the_wire_matches() {
    let server_a = Server::start(test_cfg(4)).expect("start a");
    let mut client_a = Client::connect(server_a.local_addr()).expect("connect a");
    load(&mut client_a);

    // Per-shard snapshots off A, pushed into a fresh same-config B.
    let server_b = Server::start(test_cfg(4)).expect("start b");
    let mut client_b = Client::connect(server_b.local_addr()).expect("connect b");
    for shard in 0..4u32 {
        let blob = client_a.snapshot(shard).expect("snapshot");
        client_b.restore(shard, &blob).expect("restore");
    }

    let a = answers(&mut client_a);
    let b = answers(&mut client_b);
    assert_eq!(a, b, "wire-restored server diverged");

    client_a.shutdown().unwrap();
    client_b.shutdown().unwrap();
    server_a.wait();
    server_b.wait();
}

#[test]
fn restore_rejects_bad_blob_and_bad_shard() {
    let server = Server::start(test_cfg(2)).expect("start");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert!(client.restore(0, b"not a frame").is_err());
    let blob = client.snapshot(0).expect("snapshot");
    assert!(client.restore(7, &blob).is_err(), "out-of-range shard accepted");
    assert!(client.snapshot(9).is_err(), "out-of-range shard accepted");
    // Shard 0's snapshot cannot restore into shard 1 (placement check).
    assert!(client.restore(1, &blob).is_err(), "cross-shard restore accepted");
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn rebalance_merge_4_to_2_preserves_guarantees() {
    let server = Server::start(test_cfg(4)).expect("start");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let keys: Vec<u64> = (0..N_KEYS).map(mix64).collect();
    client.insert_batch(0, &keys).expect("insert");
    let freq_floor: Vec<(u64, u64)> = (0..32).map(|i| (keys[keys.len() - 1 - i], 1u64)).collect();
    let ckpt_bytes = client.snapshot_all().expect("snapshot_all");
    client.shutdown().unwrap();
    server.wait();

    let ckpt = Checkpoint::decode(&ckpt_bytes).expect("decode");
    let (cfg, engines) = ckpt.build_engines(2).expect("merge 4 -> 2");
    assert_eq!(cfg.shards, 2);
    let server2 = Server::start_with_engines(ServerConfig { engine: cfg, ..test_cfg(2) }, engines)
        .expect("restart at 2 shards");
    let mut client2 = Client::connect(server2.local_addr()).expect("connect");

    // BF merge is exact (cell-wise OR): recent keys must still be members.
    // The rebalanced per-shard window is unchanged, so keys inserted within
    // the last per-shard window survive.
    for &(key, _) in &freq_floor {
        assert!(client2.query_member(key).unwrap(), "merge lost member {key}");
    }
    // CM merge is cell-wise max: never underestimates a present key.
    for &(key, floor) in &freq_floor {
        assert!(client2.query_freq(key).unwrap() >= floor, "merge underestimated {key}");
    }
    // Cardinality stays positive (per-shard estimates merged, not zeroed).
    assert!(client2.query_card().unwrap() > 0.0);
    client2.shutdown().unwrap();
    server2.wait();
}

#[test]
fn rebalance_split_2_to_4_preserves_guarantees() {
    let mut direct = DirectEngine::new(EngineConfig {
        window: 1 << 16,
        shards: 2,
        memory_bytes: 64 << 10,
        seed: 3,
    });
    let keys: Vec<u64> = (0..N_KEYS).map(mix64).collect();
    for &k in &keys {
        direct.insert(0, k);
    }
    let ckpt = direct.checkpoint();

    let mut restored = DirectEngine::restore(&ckpt, Some(4)).expect("split 2 -> 4");
    assert_eq!(restored.config().shards, 4);
    for &k in &keys[keys.len() - 64..] {
        assert!(restored.member(k), "split lost member {k:#x}");
        assert!(restored.frequency(k) >= 1, "split underestimated {k:#x}");
    }
}

#[test]
fn rebalance_handles_arbitrary_counts() {
    let mut direct = DirectEngine::new(EngineConfig {
        window: 1 << 12,
        shards: 4,
        memory_bytes: 16 << 10,
        seed: 1,
    });
    let keys: Vec<u64> = (0..512u64).map(mix64).collect();
    for &k in &keys {
        direct.insert(0, k);
    }
    let ckpt = direct.checkpoint();
    assert!(DirectEngine::restore(&ckpt, Some(0)).is_err(), "0 shards must be rejected");
    assert!(DirectEngine::restore(&ckpt, Some(8)).is_ok(), "4 -> 8 must split");
    assert!(DirectEngine::restore(&ckpt, Some(1)).is_ok(), "4 -> 1 must merge");
    // Non-divisible counts rebalance too (PR 6): each new shard merges
    // every old shard its hash range overlaps, so the one-sided
    // guarantees survive in both directions.
    for new in [3usize, 5, 7] {
        let mut r = DirectEngine::restore(&ckpt, Some(new))
            .unwrap_or_else(|e| panic!("4 -> {new} rebalance failed: {e}"));
        assert_eq!(r.config().shards, new);
        for &k in &keys[keys.len() - 64..] {
            assert!(r.member(k), "4 -> {new} lost member {k:#x}");
            assert!(r.frequency(k) >= 1, "4 -> {new} underestimated {k:#x}");
        }
    }
}

#[test]
fn direct_engine_checkpoint_roundtrip_is_bit_exact() {
    let cfg = EngineConfig { window: 1 << 14, shards: 4, memory_bytes: 32 << 10, seed: 9 };
    let mut a = DirectEngine::new(cfg);
    for i in 0..5_000u64 {
        a.insert(0, mix64(i));
        if i % 3 == 0 {
            a.insert(1, mix64(i));
        }
    }
    let ckpt = a.checkpoint();
    let mut b = DirectEngine::restore(&ckpt, None).expect("restore");
    for i in 0..6_000u64 {
        let k = mix64(i);
        assert_eq!(a.member(k), b.member(k), "member {i}");
        assert_eq!(a.frequency(k), b.frequency(k), "freq {i}");
    }
    assert_eq!(a.cardinality().to_bits(), b.cardinality().to_bits());
    assert_eq!(a.similarity().to_bits(), b.similarity().to_bits());
    assert_eq!(a.stats(), b.stats());
}
