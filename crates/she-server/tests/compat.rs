//! Cross-version compatibility: a protocol-v1 client against a v3
//! server. A v1 client never sends `HELLO` — it opens the socket and
//! speaks the original opcode set directly — and every v1 opcode's
//! encoding is unchanged in v3, so the server must answer each one
//! exactly as a v1 server would. Table-driven: one row per v1 request,
//! with the response shape it must produce.

use she_server::codec::{read_frame, write_frame};
use she_server::protocol::{Request, Response};
use she_server::{EngineConfig, Server, ServerConfig};
use std::net::TcpStream;

/// What a v1 client may observe for one request.
#[derive(Debug)]
enum Expect {
    OkAccepted(u64),
    Bool,
    U64,
    F64,
    Stats,
}

fn expect_matches(exp: &Expect, resp: &Response) -> bool {
    match (exp, resp) {
        (Expect::OkAccepted(n), Response::Ok { accepted }) => accepted == n,
        // BUSY is a legal v1 answer to any insert under backpressure.
        (Expect::OkAccepted(_), Response::Busy { .. }) => true,
        (Expect::Bool, Response::Bool(_)) => true,
        (Expect::U64, Response::U64(_)) => true,
        (Expect::F64, Response::F64(_)) => true,
        (Expect::Stats, Response::Stats(_)) => true,
        _ => false,
    }
}

/// A raw v1 client: frames on a socket, no `HELLO`, no retry logic.
struct V1Client(TcpStream);

impl V1Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_nodelay(true).unwrap();
        V1Client(s)
    }

    fn call(&mut self, req: &Request) -> Response {
        write_frame(&mut self.0, &req.encode()).expect("write");
        let payload = read_frame(&mut self.0).expect("read").expect("server closed");
        Response::decode(&payload).expect("decode")
    }
}

#[test]
fn v1_client_round_trips_against_v3_server() {
    let server = Server::start(ServerConfig {
        engine: EngineConfig { window: 1 << 10, shards: 2, memory_bytes: 8 << 10, seed: 5 },
        // Replication enabled: v1 clients must be oblivious to it.
        repl_log: 64,
        ..Default::default()
    })
    .expect("start");
    let mut client = V1Client::connect(server.local_addr());

    let table: Vec<(Request, Expect)> = vec![
        (Request::Insert { stream: 0, key: 7 }, Expect::OkAccepted(1)),
        (Request::Insert { stream: 1, key: 7 }, Expect::OkAccepted(1)),
        (Request::InsertBatch { stream: 0, keys: (0..100).collect() }, Expect::OkAccepted(100)),
        (Request::InsertBatch { stream: 0, keys: vec![] }, Expect::OkAccepted(0)),
        (Request::QueryMember { key: 7 }, Expect::Bool),
        (Request::QueryCard, Expect::F64),
        (Request::QueryFreq { key: 7 }, Expect::U64),
        (Request::QuerySim, Expect::F64),
        (Request::Stats, Expect::Stats),
    ];
    for (req, exp) in &table {
        let resp = client.call(req);
        assert!(expect_matches(exp, &resp), "{req:?} answered {resp:?}, wanted {exp:?}");
    }

    // Semantics, not just shapes: the inserted key is visible.
    assert_eq!(client.call(&Request::QueryMember { key: 7 }), Response::Bool(true));
    match client.call(&Request::QueryFreq { key: 42 }) {
        Response::U64(n) => assert!(n >= 1, "key 42 was inserted by the batch"),
        other => panic!("freq answered {other:?}"),
    }

    // v1's shutdown still works on a replicating v3 server.
    assert!(matches!(client.call(&Request::Shutdown), Response::Ok { .. }));
    server.wait();
}

#[test]
fn v3_opcodes_do_not_collide_with_v1_decoding() {
    // Every v3-only message must decode as itself — never as some v1
    // message — and v1 messages must survive a re-decode unchanged, so a
    // mixed fleet can share one wire format.
    let v3_requests = [
        Request::Hello { version: 3 },
        Request::ReplBootstrap,
        Request::ReplSubscribe { from_seq: 9, node_id: 0 },
        Request::ReplAck { seq: 9 },
        Request::ClusterStatus,
    ];
    for req in &v3_requests {
        assert_eq!(Request::decode(&req.encode()).as_ref(), Ok(req));
    }
    let v1_requests =
        [Request::Insert { stream: 0, key: 1 }, Request::QueryMember { key: 1 }, Request::Stats];
    for req in &v1_requests {
        assert_eq!(Request::decode(&req.encode()).as_ref(), Ok(req));
    }
}
