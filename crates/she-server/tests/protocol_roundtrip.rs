//! Wire-protocol coverage: every message type round-trips through
//! encode → frame → unframe → decode, including the largest legal batch,
//! and every truncation of every encoding is rejected instead of
//! misparsed.

use she_server::codec::{read_frame, write_frame};
use she_server::protocol::{
    ClusterStatusInfo, PeerStatus, ProtoError, ReadpathStatus, Request, Response, ShardStats,
    MAX_BATCH,
};
use std::io::Cursor;

fn all_requests() -> Vec<Request> {
    vec![
        Request::Insert { stream: 0, key: 0 },
        Request::Insert { stream: 1, key: u64::MAX },
        Request::InsertBatch { stream: 0, keys: vec![] },
        Request::InsertBatch { stream: 1, keys: vec![1, 2, 3, u64::MAX] },
        Request::QueryMember { key: 0xDEAD_BEEF },
        Request::QueryCard,
        Request::QueryFreq { key: 42 },
        Request::QuerySim,
        Request::QueryFast { op: 0, key: 7 },
        Request::QueryFast { op: 4, key: u64::MAX },
        Request::Stats,
        Request::Hello { version: 2 },
        Request::Snapshot { shard: 0 },
        Request::Snapshot { shard: u32::MAX },
        Request::SnapshotAll,
        Request::Restore { shard: 3, data: vec![] },
        Request::Restore { shard: 0, data: b"SHEF-opaque-shard-bytes".to_vec() },
        Request::ReplBootstrap,
        Request::ReplSubscribe { from_seq: 0, node_id: 0 },
        Request::ReplSubscribe { from_seq: u64::MAX, node_id: 0 },
        Request::ReplSubscribe { from_seq: 7, node_id: 42 },
        Request::ReplAck { seq: 12_345 },
        Request::ClusterStatus,
        Request::Shutdown,
    ]
}

fn all_responses() -> Vec<Response> {
    vec![
        Response::Ok { accepted: 0 },
        Response::Ok { accepted: u64::MAX },
        Response::Bool(true),
        Response::Bool(false),
        Response::U64(123_456_789),
        Response::F64(0.0),
        Response::F64(f64::MAX),
        Response::F64(-1.5),
        Response::Stats(vec![]),
        Response::Stats(vec![
            ShardStats { inserts: 1, queries: 2, memory_bits: 3 },
            ShardStats { inserts: u64::MAX, queries: 0, memory_bits: 1 << 40 },
        ]),
        Response::Blob(vec![]),
        Response::Blob((0u8..255).collect()),
        Response::Hello { version: 1 },
        Response::Hello { version: 2 },
        Response::Err("".to_string()),
        Response::Err("shard queue wedged".to_string()),
        Response::Busy { retry_after_ms: 0 },
        Response::Busy { retry_after_ms: u32::MAX },
        Response::Overloaded { retry_after_ms: 0 },
        Response::Overloaded { retry_after_ms: u32::MAX },
        Response::ReplOp(vec![]),
        Response::ReplOp(b"SHEF-opaque-oplog-record".to_vec()),
        Response::ReplHeartbeat { head: 0 },
        Response::ReplHeartbeat { head: u64::MAX },
        Response::NotPrimary { primary: "".to_string() },
        Response::NotPrimary { primary: "10.0.0.1:7070".to_string() },
        Response::LogTruncated { floor: 99 },
        Response::ClusterStatus(ClusterStatusInfo {
            is_primary: true,
            connected: true,
            head: 1_000,
            floor: 900,
            boot_seq: 0,
            primary: "".to_string(),
            peers: vec![
                PeerStatus { addr: "10.0.0.2:4321".to_string(), acked: 998 },
                PeerStatus { addr: "10.0.0.3:4321".to_string(), acked: 1_000 },
            ],
            queue_depths: vec![0, 3, 17, u64::MAX],
            readpath: ReadpathStatus {
                enabled: true,
                hits: 9_000,
                misses: 41,
                fills: 41,
                invalidations: 5,
                seq: 1_000,
            },
        }),
        Response::ClusterStatus(ClusterStatusInfo {
            is_primary: false,
            connected: false,
            head: 7,
            floor: 0,
            boot_seq: 5,
            primary: "10.0.0.1:7070".to_string(),
            peers: vec![],
            queue_depths: vec![],
            readpath: ReadpathStatus::default(),
        }),
    ]
}

#[test]
fn every_request_round_trips() {
    for req in all_requests() {
        let enc = req.encode();
        assert_eq!(Request::decode(&enc), Ok(req.clone()), "{req:?}");
    }
}

#[test]
fn every_response_round_trips() {
    for resp in all_responses() {
        let enc = resp.encode();
        let dec = Response::decode(&enc).unwrap_or_else(|e| panic!("{resp:?}: {e}"));
        match (&resp, &dec) {
            // F64 compares by bits so NaN-free payloads must be identical.
            (Response::F64(a), Response::F64(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            _ => assert_eq!(resp, dec),
        }
    }
}

#[test]
fn max_length_batch_round_trips_through_framing() {
    let keys: Vec<u64> = (0..MAX_BATCH as u64).collect();
    let req = Request::InsertBatch { stream: 1, keys };
    let enc = req.encode();

    let mut framed = Vec::new();
    write_frame(&mut framed, &enc).expect("max batch must fit in a frame");
    let mut cursor = Cursor::new(framed);
    let payload = read_frame(&mut cursor).unwrap().unwrap();
    assert_eq!(Request::decode(&payload), Ok(req));
}

#[test]
fn oversize_batch_count_is_rejected() {
    // Hand-craft a batch header that *declares* MAX_BATCH+1 keys.
    let mut enc = vec![0x02u8, 0];
    enc.extend_from_slice(&((MAX_BATCH as u32) + 1).to_le_bytes());
    assert_eq!(Request::decode(&enc), Err(ProtoError::Oversize));
}

#[test]
fn every_truncated_request_is_rejected() {
    for req in all_requests() {
        let enc = req.encode();
        for cut in 0..enc.len() {
            if matches!(req, Request::Restore { .. }) && cut >= 5 {
                // RESTORE's blob is the frame remainder, so any prefix that
                // keeps opcode + shard is a (shorter) valid RESTORE — skip.
                continue;
            }
            if matches!(req, Request::ReplSubscribe { node_id, .. } if node_id != 0) && cut == 9 {
                // The v6 node_id tail is optional by design — a cut at
                // exactly the v5 boundary (opcode + from_seq) is a valid
                // anonymous subscribe, not an error.
                continue;
            }
            let r = Request::decode(&enc[..cut]);
            assert!(r.is_err(), "{req:?} truncated to {cut} bytes decoded as {r:?}");
        }
    }
}

#[test]
fn every_truncated_response_is_rejected() {
    for resp in all_responses() {
        let enc = resp.encode();
        for cut in 0..enc.len() {
            if matches!(
                resp,
                Response::Err(_)
                    | Response::Blob(_)
                    | Response::ReplOp(_)
                    | Response::NotPrimary { .. }
            ) && cut >= 1
            {
                // These payloads are the frame remainder, so any prefix
                // that keeps the opcode is a (shorter) valid message —
                // skip. (NOT_PRIMARY prefixes stay valid because the test
                // addresses are ASCII.)
                continue;
            }
            if let Response::ClusterStatus(info) = &resp {
                // The v5 tail (depth count + depths + enabled flag + five
                // counters) is optional by design — a cut at exactly the
                // v4 boundary is a valid pre-v5 status, not an error.
                let tail = 4 + 8 * info.queue_depths.len() + 1 + 40;
                if cut == enc.len() - tail {
                    continue;
                }
            }
            let r = Response::decode(&enc[..cut]);
            assert!(r.is_err(), "{resp:?} truncated to {cut} bytes decoded as {r:?}");
        }
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    for req in all_requests() {
        if matches!(req, Request::Restore { .. }) {
            // RESTORE's blob is the frame remainder by design; a trailing
            // byte extends the blob (and fails the frame checksum later).
            continue;
        }
        let mut enc = req.encode();
        enc.push(0xAB);
        // InsertBatch's count field means an extra byte can't silently
        // extend the key list; it must be a decode error for every type.
        assert!(Request::decode(&enc).is_err(), "{req:?} accepted a trailing byte");
    }
}

#[test]
fn unknown_opcodes_are_rejected() {
    for op in [0x00u8, 0x03, 0x16, 0x7F, 0xFF] {
        assert_eq!(Request::decode(&[op]), Err(ProtoError::BadOpcode(op)));
    }
    assert_eq!(Response::decode(&[0x00]), Err(ProtoError::BadOpcode(0x00)));
}

#[test]
fn empty_payload_is_truncated_not_panicking() {
    assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
    assert_eq!(Response::decode(&[]), Err(ProtoError::Truncated));
}
