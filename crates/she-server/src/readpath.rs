//! Server-side glue for the `she-readpath` accelerator: the sharded
//! mirror that implements [`Authority`], the builder that seeds it from
//! the (possibly restored) shard engines, and the refresher thread that
//! tails the primary's op log.
//!
//! The mirror is a second, read-only copy of the authoritative engines:
//! same [`EngineConfig`], same router, fed the identical per-shard insert
//! order ([`EngineConfig::partition`]) — so its *frozen* reads answer
//! bit-for-bit what the workers would answer on the same insert history.
//! On a primary the refresher keeps it fresh from the replication log
//! tail (the read path rides the replication machinery; it adds no work
//! to the write path). On a replica the [`crate::server::Injector`] feeds
//! it synchronously alongside the shard queues, and the refresher idles
//! on the empty local log until a promotion starts filling it.

use crate::engine::{EngineConfig, ShardEngine};
use crate::repl::Tail;
use crate::server::Shared;
use crate::worker::Job;
use she_core::{SlidingTopK, SnapshotError};
use she_metrics::ReadpathCounters;
use she_readpath::{op, Authority, FastSummary, ReadPath, ReadPathConfig};
use std::io;
use std::sync::atomic::Ordering;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Duration;

/// Records fetched per op-log poll by the refresher.
const REFRESH_BATCH: usize = 64;
/// Refresher poll timeout — also bounds its shutdown latency.
const REFRESH_POLL: Duration = Duration::from_millis(100);

/// All mirrored shards plus the routing config — the server's
/// [`Authority`] behind the fast summary.
#[derive(Debug)]
pub(crate) struct MirrorEngine {
    cfg: EngineConfig,
    shards: Vec<ShardEngine>,
}

impl MirrorEngine {
    pub(crate) fn new(cfg: EngineConfig) -> Self {
        Self { cfg, shards: (0..cfg.shards).map(|i| ShardEngine::new(&cfg, i)).collect() }
    }
}

impl Authority for MirrorEngine {
    fn apply(&mut self, stream: u8, keys: &[u64]) {
        // The same partition the write path uses, so per-shard insert
        // order matches the workers' exactly.
        for (shard, ks) in self.cfg.partition(keys) {
            for k in ks {
                self.shards[shard].insert(stream, k);
            }
        }
    }

    fn member_frozen(&self, key: u64) -> bool {
        self.shards[self.cfg.shard_of(key)].member_frozen(key)
    }

    fn frequency_frozen(&self, key: u64) -> u64 {
        self.shards[self.cfg.shard_of(key)].frequency_frozen(key)
    }

    fn mark_sig(&self, opcode: u8, key: u64) -> u64 {
        self.shards[self.cfg.shard_of(key)].mark_sig(opcode == op::FREQ, key)
    }

    fn load(&mut self, shard: usize, frame: &[u8], merge: bool) -> Result<(), SnapshotError> {
        let Some(engine) = self.shards.get_mut(shard) else {
            return Err(SnapshotError::ConfigMismatch { field: "shard index" });
        };
        if merge {
            engine.reconcile(frame)
        } else {
            engine.restore(frame)
        }
    }
}

/// Build a server's read path: a mirror seeded from the engines'
/// snapshots (so a restored server starts its fast reads from the
/// restored state, not empty) plus the ranking summary. The top-k
/// summary cannot be seeded from snapshots — they carry no ranking — so
/// it warms from the op stream only.
pub(crate) fn build(
    cfg: &EngineConfig,
    rcfg: ReadPathConfig,
    engines: &[ShardEngine],
) -> io::Result<Arc<ReadPath>> {
    let mut mirror = MirrorEngine::new(*cfg);
    for (shard, engine) in engines.iter().enumerate() {
        mirror.load(shard, &engine.snapshot(), false).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("read-path mirror seed: {e}"))
        })?;
    }
    let topk =
        SlidingTopK::new(rcfg.topk.max(1), cfg.window.max(1), cfg.memory_bytes.max(64), cfg.seed);
    let fast = FastSummary::new(Box::new(mirror), topk);
    Ok(Arc::new(ReadPath::new(fast, rcfg, Arc::new(ReadpathCounters::new()))))
}

/// The refresher loop: tail the op log from just past the read path's
/// applied watermark, folding each record into the fast summary. A
/// truncated tail (the refresher fell more than a log's capacity behind)
/// resyncs from fresh shard snapshots taken under a log cut — the same
/// recovery a lagging replica performs.
pub(crate) fn run_refresher(shared: &Shared, rp: &ReadPath) {
    let Some(log) = &shared.log else { return };
    let mut next = rp.seq().saturating_add(1);
    while !shared.shutdown.load(Ordering::SeqCst) {
        match log.wait_from(next, REFRESH_BATCH, REFRESH_POLL) {
            Tail::Records(records) => {
                for r in records {
                    rp.apply(r.stream, &r.keys);
                    rp.set_seq(r.seq);
                    next = r.seq.saturating_add(1);
                }
            }
            Tail::Truncated { .. } => match resync(shared, rp) {
                Some(seq) => next = seq.saturating_add(1),
                // Workers gone: the server is draining; nothing to serve.
                None => return,
            },
            Tail::Timeout => {}
        }
    }
}

/// Rebuild the mirror from an exact cut: snapshot jobs enqueued under
/// the log lock (so `seq` names precisely the state they capture), then
/// each frame loaded into the mirror (which drops every cached answer).
/// Returns the cut sequence, or `None` when the workers are gone.
fn resync(shared: &Shared, rp: &ReadPath) -> Option<u64> {
    let log = shared.log.as_ref()?;
    let mut rxs = Vec::with_capacity(shared.txs.len());
    let mut wedged = false;
    let seq = log.cut(|| {
        for tx in &shared.txs {
            let (reply, rx) = sync_channel(1);
            wedged |= tx.send(Job::Snapshot { reply }).is_err();
            rxs.push(rx);
        }
    });
    if wedged {
        return None;
    }
    for (shard, rx) in rxs.into_iter().enumerate() {
        let frame = rx.recv().ok()?;
        if rp.load(shard, &frame, false).is_err() {
            // A same-config snapshot cannot fail to load; if it somehow
            // does, at least drop the cache so nothing stale is served.
            rp.invalidate_all();
        }
    }
    rp.set_seq(seq);
    Some(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use she_hash::mix64;

    /// The mirror must agree bit-for-bit with an identically fed set of
    /// shard engines — the property QUERY_FAST correctness rests on.
    #[test]
    fn mirror_matches_directly_fed_engines() {
        let cfg = EngineConfig { window: 1 << 12, shards: 4, memory_bytes: 64 << 10, seed: 9 };
        let mut mirror = MirrorEngine::new(cfg);
        let mut direct: Vec<ShardEngine> =
            (0..cfg.shards).map(|i| ShardEngine::new(&cfg, i)).collect();
        let keys: Vec<u64> = (0..6000u64).map(|i| mix64(i) % 1500).collect();
        for chunk in keys.chunks(37) {
            mirror.apply(0, chunk);
            for (shard, ks) in cfg.partition(chunk) {
                for k in ks {
                    direct[shard].insert(0, k);
                }
            }
        }
        for probe in 0..2000u64 {
            let shard = cfg.shard_of(probe);
            assert_eq!(mirror.member_frozen(probe), direct[shard].member_frozen(probe));
            assert_eq!(mirror.frequency_frozen(probe), direct[shard].frequency_frozen(probe));
            assert_eq!(mirror.mark_sig(op::FREQ, probe), direct[shard].mark_sig(true, probe));
        }
    }

    /// Seeding from snapshots reproduces the source engines exactly.
    #[test]
    fn build_seeds_mirror_from_engine_snapshots() {
        let cfg = EngineConfig { window: 1 << 10, shards: 2, memory_bytes: 32 << 10, seed: 4 };
        let mut engines: Vec<ShardEngine> =
            (0..cfg.shards).map(|i| ShardEngine::new(&cfg, i)).collect();
        for i in 0..3000u64 {
            let k = mix64(i) % 800;
            engines[cfg.shard_of(k)].insert(0, k);
        }
        let rp = build(&cfg, ReadPathConfig::default(), &engines).expect("seed");
        for probe in 0..1200u64 {
            let shard = cfg.shard_of(probe);
            let got = rp.query(op::FREQ, probe);
            assert_eq!(
                got,
                Some(she_readpath::FastAnswer::Count(engines[shard].frequency_frozen(probe))),
                "seeded mirror diverges on key {probe}"
            );
        }
    }
}
