//! The per-shard mining state and its sharded composition.
//!
//! A [`ShardEngine`] bundles one SHE structure per supported query class
//! (membership, cardinality, frequency, similarity) over the shard's slice
//! of the key space. The server gives each worker thread exclusive
//! ownership of one `ShardEngine` — no locks on the hot path — while the
//! loadgen's `--verify` mode drives an identical [`DirectEngine`] in
//! process, so server answers can be compared bit-for-bit.
//!
//! Sharding follows `she-core/src/sharded.rs`: keys route by
//! `reduce_range(mix64(key ^ ROUTER_SEED), shards)`, each shard covers a
//! window of `N/S` items, cardinality estimates *sum* across shards
//! (shards partition the key space) and the Jaccard estimate *averages*
//! across shards (the same uniform hash routes a key to the same shard in
//! both streams, so every shard sees an unbiased sample of the pair).

use crate::protocol::ShardStats;
use she_core::convert::usize_of;
use she_core::frame::{self, Frame, FrameWriter, Reader};
use she_core::{SheBitmap, SheBloomFilter, SheCountMin, SheMinHash, SnapshotError, SnapshotState};
use she_hash::mix64;

/// Router constant shared with `she_core::sharded` (keep in sync).
pub const ROUTER_SEED: u64 = 0x5EED_0000_0000_0001;

/// Sizing and seeding for a sharded engine. `window` and `memory_bytes`
/// are *global*: each of the `shards` shards gets `window / shards` items
/// and `memory_bytes / shards` bytes per structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Global sliding-window length, in items.
    pub window: u64,
    /// Number of shards (= server worker threads).
    pub shards: usize,
    /// Global memory budget per structure class, in bytes.
    pub memory_bytes: usize,
    /// Hash seed, shared by every shard: identical hash functions are what
    /// make shard snapshots mergeable when the shard count changes (cells
    /// of two shards line up only under the same hashes).
    pub seed: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { window: 1 << 16, shards: 4, memory_bytes: 64 << 10, seed: 1 }
    }
}

impl EngineConfig {
    /// The shard a key routes to.
    ///
    /// `reduce_range` is monotone in the hash, so each shard owns one
    /// contiguous hash range — the property shard rebalancing relies on:
    /// halving the shard count merges *adjacent* shards' key sets.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        she_hash::reduce_range(mix64(key ^ ROUTER_SEED), self.shards)
    }

    /// Partition `keys` into per-shard runs, preserving arrival order
    /// within each shard (windows are order-sensitive). Shared by the
    /// server's insert path and the replica's op-log apply path so both
    /// feed shards the identical per-shard key order.
    pub fn partition(&self, keys: &[u64]) -> Vec<(usize, Vec<u64>)> {
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); self.shards];
        for &k in keys {
            per_shard[self.shard_of(k)].push(k);
        }
        per_shard.into_iter().enumerate().filter(|(_, ks)| !ks.is_empty()).collect()
    }

    /// Serialize for embedding in snapshot frames.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(28);
        b.extend_from_slice(&self.window.to_le_bytes());
        b.extend_from_slice(&(self.shards as u64).to_le_bytes());
        b.extend_from_slice(&(self.memory_bytes as u64).to_le_bytes());
        b.extend_from_slice(&self.seed.to_le_bytes());
        b
    }

    /// Decode a config serialized by [`EngineConfig::encode`].
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            window: r.u64().map_err(SnapshotError::Frame)?,
            shards: usize_of(r.u64().map_err(SnapshotError::Frame)?),
            memory_bytes: usize_of(r.u64().map_err(SnapshotError::Frame)?),
            seed: r.u32().map_err(SnapshotError::Frame)?,
        })
    }
}

/// One shard's sketches. Inserts feed every structure; stream B (tag 1)
/// exists only for the similarity pair and feeds just its MinHash.
#[derive(Debug)]
pub struct ShardEngine {
    cfg: EngineConfig,
    shard: usize,
    bf: SheBloomFilter,
    bm: SheBitmap,
    cm: SheCountMin,
    mh_a: SheMinHash,
    mh_b: SheMinHash,
    inserts: u64,
    queries: u64,
}

impl ShardEngine {
    /// Build shard `shard` of a `cfg`-sized engine.
    pub fn new(cfg: &EngineConfig, shard: usize) -> Self {
        assert!(shard < cfg.shards);
        let window = (cfg.window / cfg.shards as u64).max(1);
        let bytes = (cfg.memory_bytes / cfg.shards).max(64);
        let seed = cfg.seed;
        Self {
            cfg: *cfg,
            shard,
            bf: SheBloomFilter::builder().window(window).memory_bytes(bytes).seed(seed).build(),
            bm: SheBitmap::builder().window(window).memory_bytes(bytes).seed(seed).build(),
            cm: SheCountMin::builder().window(window).memory_bytes(bytes).seed(seed).build(),
            // The similarity pair must share hash functions (same seed) —
            // per-row minima are only comparable under identical hashes.
            // Sized by hash count, not bytes: every insert touches every
            // row, so a byte budget would make inserts O(memory).
            mh_a: SheMinHash::builder().window(window).num_hashes(128).seed(seed).build(),
            mh_b: SheMinHash::builder().window(window).num_hashes(128).seed(seed).build(),
            inserts: 0,
            queries: 0,
        }
    }

    /// Insert a key into stream 0 (A) or 1 (B). Stream A feeds every
    /// structure; stream B only its similarity MinHash.
    #[inline]
    pub fn insert(&mut self, stream: u8, key: u64) {
        if stream == 0 {
            self.bf.insert(&key);
            self.bm.insert(&key);
            self.cm.insert(&key);
            self.mh_a.insert(&key);
        } else {
            self.mh_b.insert(&key);
        }
        self.inserts += 1;
    }

    /// Sliding-window membership in stream A.
    pub fn member(&mut self, key: u64) -> bool {
        self.queries += 1;
        self.bf.contains(&key)
    }

    /// This shard's contribution to the stream-A cardinality.
    pub fn cardinality(&mut self) -> f64 {
        self.queries += 1;
        self.bm.estimate()
    }

    /// Sliding-window frequency of `key` in stream A.
    pub fn frequency(&mut self, key: u64) -> u64 {
        self.queries += 1;
        self.cm.query(&key)
    }

    /// This shard's A/B Jaccard estimate.
    pub fn similarity(&mut self) -> f64 {
        self.queries += 1;
        self.mh_a.similarity(&mut self.mh_b)
    }

    /// Frozen membership: answers exactly what [`ShardEngine::member`]
    /// would on this state, without mutating anything (no lazy clears, no
    /// counter bump) — the read-path mirror's query primitive.
    pub fn member_frozen(&self, key: u64) -> bool {
        self.bf.contains_frozen(&key)
    }

    /// Frozen frequency: the non-mutating twin of
    /// [`ShardEngine::frequency`].
    pub fn frequency_frozen(&self, key: u64) -> u64 {
        self.cm.query_frozen(&key)
    }

    /// Observation-context signature of the cells `key`'s answer depends
    /// on (`freq` selects the Count-Min sketch, otherwise the Bloom
    /// filter). The signature changes iff one of those cells' groups
    /// flips its time mark or crosses maturity — the mark cache's
    /// invalidation predicate.
    pub fn mark_sig(&self, freq: bool, key: u64) -> u64 {
        if freq {
            self.cm.mark_sig(&key)
        } else {
            self.bf.mark_sig(&key)
        }
    }

    /// Serialize this shard: sizing config + counters + one nested frame
    /// per structure, wrapped in a `SHARD` frame.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(frame::kind::SHARD);

        let mut sec = self.cfg.encode();
        sec.extend_from_slice(&(self.shard as u64).to_le_bytes());
        w.section(frame::tag::CONFIG, &sec);

        sec = Vec::with_capacity(16);
        sec.extend_from_slice(&self.inserts.to_le_bytes());
        sec.extend_from_slice(&self.queries.to_le_bytes());
        w.section(frame::tag::COUNTERS, &sec);

        w.section(frame::tag::STRUCT_BF, &self.bf.save_snapshot());
        w.section(frame::tag::STRUCT_BM, &self.bm.save_snapshot());
        w.section(frame::tag::STRUCT_CM, &self.cm.save_snapshot());
        w.section(frame::tag::STRUCT_MH_A, &self.mh_a.save_snapshot());
        w.section(frame::tag::STRUCT_MH_B, &self.mh_b.save_snapshot());
        w.finish()
    }

    /// Parse a `SHARD` frame and hand its sections to `structures` —
    /// shared by [`ShardEngine::restore`] (exact) and
    /// [`ShardEngine::merge`] (cell-wise).
    fn with_shard_frame(
        &mut self,
        buf: &[u8],
        check_placement: bool,
        mut structures: impl FnMut(
            &mut Self,
            [&[u8]; 5], // bf, bm, cm, mh_a, mh_b
        ) -> Result<(), SnapshotError>,
    ) -> Result<(u64, u64), SnapshotError> {
        let f = Frame::parse(buf)?;
        if f.kind != frame::kind::SHARD {
            return Err(SnapshotError::WrongKind { expected: frame::kind::SHARD, found: f.kind });
        }
        let section = |tag: u16| f.section(tag).ok_or(SnapshotError::MissingSection { tag });

        let mut r = Reader::new(section(frame::tag::CONFIG)?);
        let cfg = EngineConfig::decode(&mut r)?;
        let shard = usize_of(r.u64().map_err(SnapshotError::Frame)?);
        r.finish().map_err(SnapshotError::Frame)?;
        if cfg.seed != self.cfg.seed {
            return Err(SnapshotError::ConfigMismatch { field: "seed" });
        }
        if check_placement {
            if cfg != self.cfg {
                return Err(SnapshotError::ConfigMismatch { field: "engine config" });
            }
            if shard != self.shard {
                return Err(SnapshotError::ConfigMismatch { field: "shard index" });
            }
        }

        let mut r = Reader::new(section(frame::tag::COUNTERS)?);
        let inserts = r.u64().map_err(SnapshotError::Frame)?;
        let queries = r.u64().map_err(SnapshotError::Frame)?;
        r.finish().map_err(SnapshotError::Frame)?;

        structures(
            self,
            [
                section(frame::tag::STRUCT_BF)?,
                section(frame::tag::STRUCT_BM)?,
                section(frame::tag::STRUCT_CM)?,
                section(frame::tag::STRUCT_MH_A)?,
                section(frame::tag::STRUCT_MH_B)?,
            ],
        )?;
        Ok((inserts, queries))
    }

    /// Replace this shard's state with a snapshot taken by an identically
    /// configured shard (same config, same shard index).
    pub fn restore(&mut self, buf: &[u8]) -> Result<(), SnapshotError> {
        let (inserts, queries) =
            self.with_shard_frame(buf, true, |e, [bf, bm, cm, mha, mhb]| {
                e.bf.load_snapshot(bf)?;
                e.bm.load_snapshot(bm)?;
                e.cm.load_snapshot(cm)?;
                e.mh_a.load_snapshot(mha)?;
                e.mh_b.load_snapshot(mhb)?;
                Ok(())
            })?;
        self.inserts = inserts;
        self.queries = queries;
        Ok(())
    }

    /// Merge another shard's snapshot into this one cell-wise (rebalance
    /// path). Requires the same seed and the same per-structure geometry;
    /// the source's shard index and shard count may differ.
    pub fn merge(&mut self, buf: &[u8]) -> Result<(), SnapshotError> {
        let (inserts, queries) =
            self.with_shard_frame(buf, false, |e, [bf, bm, cm, mha, mhb]| {
                e.bf.merge_snapshot(bf)?;
                e.bm.merge_snapshot(bm)?;
                e.cm.merge_snapshot(cm)?;
                e.mh_a.merge_snapshot(mha)?;
                e.mh_b.merge_snapshot(mhb)?;
                Ok(())
            })?;
        self.inserts += inserts;
        self.queries += queries;
        Ok(())
    }

    /// Anti-entropy merge: fold a same-placement snapshot of this shard
    /// (taken on another node) into this one cell-wise. Unlike
    /// [`ShardEngine::merge`] (the rebalance path, which *sums* counters
    /// because its sources partition the key space), reconcile takes the
    /// counter **max** — the two sides are copies of the *same* shard, so
    /// repeated passes are idempotent and counters never inflate.
    pub fn reconcile(&mut self, buf: &[u8]) -> Result<(), SnapshotError> {
        let (inserts, queries) =
            self.with_shard_frame(buf, true, |e, [bf, bm, cm, mha, mhb]| {
                e.bf.merge_snapshot(bf)?;
                e.bm.merge_snapshot(bm)?;
                e.cm.merge_snapshot(cm)?;
                e.mh_a.merge_snapshot(mha)?;
                e.mh_b.merge_snapshot(mhb)?;
                Ok(())
            })?;
        self.inserts = self.inserts.max(inserts);
        self.queries = self.queries.max(queries);
        Ok(())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ShardStats {
        let bits = self.bf.memory_bits()
            + self.bm.memory_bits()
            + self.cm.memory_bits()
            + self.mh_a.memory_bits()
            + self.mh_b.memory_bits();
        ShardStats { inserts: self.inserts, queries: self.queries, memory_bits: bits as u64 }
    }
}

/// All shards in one place, driven serially — the in-process reference the
/// server must agree with, and the engine behind `she-cli`'s offline mode.
#[derive(Debug)]
pub struct DirectEngine {
    cfg: EngineConfig,
    shards: Vec<ShardEngine>,
}

impl DirectEngine {
    /// Build every shard of a `cfg`-sized engine.
    pub fn new(cfg: EngineConfig) -> Self {
        let shards = (0..cfg.shards).map(|i| ShardEngine::new(&cfg, i)).collect();
        Self { cfg, shards }
    }

    /// The sizing this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Route and insert one key.
    #[inline]
    pub fn insert(&mut self, stream: u8, key: u64) {
        let s = self.cfg.shard_of(key);
        self.shards[s].insert(stream, key);
    }

    /// Membership routes to the key's shard.
    pub fn member(&mut self, key: u64) -> bool {
        let s = self.cfg.shard_of(key);
        self.shards[s].member(key)
    }

    /// Cardinality sums the shard estimates.
    pub fn cardinality(&mut self) -> f64 {
        self.shards.iter_mut().map(|s| s.cardinality()).sum()
    }

    /// Frequency routes to the key's shard.
    pub fn frequency(&mut self, key: u64) -> u64 {
        let s = self.cfg.shard_of(key);
        self.shards[s].frequency(key)
    }

    /// Similarity averages the per-shard Jaccard estimates.
    pub fn similarity(&mut self) -> f64 {
        let n = self.shards.len() as f64;
        self.shards.iter_mut().map(|s| s.similarity()).sum::<f64>() / n
    }

    /// Per-shard counters.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Serialize every shard into one checkpoint frame.
    pub fn checkpoint(&self) -> Vec<u8> {
        crate::snapshot::Checkpoint {
            cfg: self.cfg,
            shards: self.shards.iter().map(|s| s.snapshot()).collect(),
        }
        .encode()
    }

    /// Rebuild an engine from a checkpoint, rebalancing to `shards` shards
    /// if that differs from the checkpointed count (see
    /// [`crate::snapshot::Checkpoint::build_engines`]).
    pub fn restore(buf: &[u8], shards: Option<usize>) -> Result<Self, SnapshotError> {
        let ckpt = crate::snapshot::Checkpoint::decode(buf)?;
        let target = shards.unwrap_or(ckpt.cfg.shards);
        let (cfg, engines) = ckpt.build_engines(target)?;
        Ok(Self { cfg, shards: engines })
    }

    /// Decompose into per-shard engines (the server hands each to a
    /// worker thread).
    pub fn into_shards(self) -> (EngineConfig, Vec<ShardEngine>) {
        (self.cfg, self.shards)
    }
}

// The server moves ShardEngines into worker threads; this must stay true.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ShardEngine>();
    assert_send::<DirectEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_matches_she_core_sharded() {
        let cfg = EngineConfig { shards: 8, ..Default::default() };
        let reference = she_core::ShardedBloomFilter::new(8, 1 << 12, 64 << 10, 1);
        for k in 0..10_000u64 {
            assert_eq!(cfg.shard_of(k), reference.0.shard_of(k), "key {k}");
        }
    }

    #[test]
    fn direct_engine_no_false_negatives() {
        let mut e = DirectEngine::new(EngineConfig {
            window: 1 << 12,
            shards: 4,
            memory_bytes: 64 << 10,
            seed: 7,
        });
        let keys: Vec<u64> = (0..3 << 12u32).map(|i| mix64(i as u64)).collect();
        for &k in &keys {
            e.insert(0, k);
        }
        for &k in &keys[keys.len() - (1 << 11)..] {
            assert!(e.member(k), "false negative {k:#x}");
        }
        assert!(e.cardinality() > 0.0);
    }

    #[test]
    fn similarity_of_identical_streams_is_high() {
        let mut e = DirectEngine::new(EngineConfig {
            window: 1 << 10,
            shards: 2,
            memory_bytes: 16 << 10,
            seed: 3,
        });
        for i in 0..4096u64 {
            let k = mix64(i % 1000);
            e.insert(0, k);
            e.insert(1, k);
        }
        assert!(e.similarity() > 0.8, "sim {}", e.similarity());
    }
}
