//! Workload driver for a running she-server: batched Zipf inserts with
//! interleaved queries, per-op latency histograms, and an optional
//! in-process mirror engine that checks every server answer bit-for-bit.
//!
//! Two pacing modes:
//!
//! * **closed-loop** — send the next request the moment the previous
//!   response lands; measures the server's saturated throughput.
//! * **open-loop** — each batch has a scheduled departure at the target
//!   rate, and latency is measured *from the schedule*, so server-side
//!   queueing shows up in the tail instead of silently stretching the
//!   run (coordinated-omission-safe).
//!
//! Verification works because everything is deterministic: one
//! connection, FIFO shard queues, and a seeded workload mean the server
//! applies exactly the per-shard insert order the mirror sees, so
//! matching answers must be bit-identical, not merely close.

use crate::client::Client;
use crate::engine::{DirectEngine, EngineConfig};
use she_metrics::{LatencyHistogram, NetReport};
use she_streams::{CaidaLike, KeyStream};
use std::io;
use std::time::{Duration, Instant};

/// Pacing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Back-to-back requests.
    Closed,
    /// Scheduled departures at `items_per_sec` inserted items per second.
    Open { items_per_sec: f64 },
}

/// A loadgen run description.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Total items to insert (streams A and B combined).
    pub items: u64,
    /// Keys per `INSERT_BATCH` frame.
    pub batch: usize,
    /// Total queries to interleave (cycling member/freq/card/sim).
    pub queries: u64,
    /// Pacing policy.
    pub mode: Mode,
    /// Zipf key universe.
    pub universe: usize,
    /// Zipf skew.
    pub skew: f64,
    /// Workload seed.
    pub seed: u64,
    /// Every `sim_every`-th batch feeds stream B (0 = never).
    pub sim_every: u64,
    /// Mirror the stream through an in-process [`DirectEngine`] with this
    /// sizing (must match the server's) and compare every answer.
    pub verify: Option<EngineConfig>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7487".to_string(),
            items: 200_000,
            batch: 512,
            queries: 2_000,
            mode: Mode::Closed,
            universe: 100_000,
            skew: 1.05,
            seed: 1,
            sim_every: 8,
            verify: None,
        }
    }
}

/// What a run did, with per-class latency.
pub struct LoadSummary {
    /// Insert-side report (ops = batches, items = keys).
    pub insert: NetReport,
    /// Query-side report (ops = items = queries).
    pub query: NetReport,
    /// Queries whose answers were checked against the mirror.
    pub verified: u64,
    /// Checked answers that differed (must be 0 on a healthy run).
    pub mismatches: u64,
    /// `BUSY` backpressure rejections absorbed by the client.
    pub busy_retries: u64,
    /// Whole-run wall clock.
    pub wall: Duration,
}

impl LoadSummary {
    /// Render the ops/s + latency table.
    pub fn print(&self) {
        println!("{}", NetReport::header());
        println!("{}", self.insert.line());
        println!("{}", self.query.line());
        println!(
            "wall={:.2}s  busy_retries={}  verified={}  mismatches={}",
            self.wall.as_secs_f64(),
            self.busy_retries,
            self.verified,
            self.mismatches
        );
    }
}

/// Book-keeping for the query side of a run.
struct QuerySide {
    lat: LatencyHistogram,
    sent: u64,
    verified: u64,
    mismatches: u64,
}

impl QuerySide {
    /// Issue one query (kind cycles member → freq → card → sim), check it
    /// against the mirror when one is present, and time it.
    fn issue(
        &mut self,
        client: &mut Client,
        mirror: &mut Option<DirectEngine>,
        key: u64,
    ) -> io::Result<()> {
        let t = Instant::now();
        let (got_bits, want_bits) = match self.sent % 4 {
            0 => {
                let got = client.query_member(key)?;
                (got as u64, mirror.as_mut().map(|m| m.member(key) as u64))
            }
            1 => {
                let got = client.query_freq(key)?;
                (got, mirror.as_mut().map(|m| m.frequency(key)))
            }
            2 => {
                let got = client.query_card()?;
                (got.to_bits(), mirror.as_mut().map(|m| m.cardinality().to_bits()))
            }
            _ => {
                let got = client.query_sim()?;
                (got.to_bits(), mirror.as_mut().map(|m| m.similarity().to_bits()))
            }
        };
        self.lat.record(t.elapsed());
        self.sent += 1;
        if let Some(want) = want_bits {
            self.verified += 1;
            self.mismatches += (got_bits != want) as u64;
        }
        Ok(())
    }
}

/// Drive the workload against `cfg.addr`. Returns an error on transport
/// failure; verification mismatches are *reported*, not fatal (callers
/// check [`LoadSummary::mismatches`]).
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadSummary> {
    let mut client = Client::connect(&cfg.addr)?;
    let mut mirror = cfg.verify.map(DirectEngine::new);
    let mut keygen = CaidaLike::new(cfg.universe.max(2), cfg.skew, cfg.seed);

    let batch = cfg.batch.max(1) as u64;
    let n_batches = cfg.items.div_ceil(batch);
    // Interleave queries evenly: one after roughly every `stride`-th batch.
    let stride = if cfg.queries == 0 { u64::MAX } else { n_batches.div_ceil(cfg.queries).max(1) };

    let mut insert_lat = LatencyHistogram::new();
    let mut queries =
        QuerySide { lat: LatencyHistogram::new(), sent: 0, verified: 0, mismatches: 0 };
    let mut sent_items = 0u64;
    let mut last_key = 0u64;
    let start = Instant::now();

    for b in 0..n_batches {
        let take = batch.min(cfg.items - sent_items) as usize;
        let keys = keygen.take_vec(take);
        last_key = *keys.last().unwrap_or(&last_key);
        let stream =
            if cfg.sim_every > 0 && b % cfg.sim_every == cfg.sim_every - 1 { 1u8 } else { 0u8 };

        // Open-loop: wait for this batch's scheduled departure, then
        // charge latency from the schedule, not from the actual send.
        let op_start = match cfg.mode {
            Mode::Closed => Instant::now(),
            Mode::Open { items_per_sec } => {
                let due = start + Duration::from_secs_f64(sent_items as f64 / items_per_sec);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                due
            }
        };
        client.insert_batch(stream, &keys)?;
        insert_lat.record(op_start.elapsed());
        sent_items += take as u64;

        if let Some(m) = mirror.as_mut() {
            for &k in &keys {
                m.insert(stream, k);
            }
        }

        if b % stride == stride - 1 && queries.sent < cfg.queries {
            queries.issue(&mut client, &mut mirror, last_key)?;
        }
    }

    // Any remaining query budget runs back-to-back at the end (small
    // `items` with large `queries` would otherwise under-deliver).
    while queries.sent < cfg.queries {
        queries.issue(&mut client, &mut mirror, last_key)?;
    }

    let wall = start.elapsed();
    Ok(LoadSummary {
        insert: NetReport::new("insert_batch", n_batches, sent_items, wall, insert_lat),
        query: NetReport::new("query", queries.sent, queries.sent, wall, queries.lat),
        verified: queries.verified,
        mismatches: queries.mismatches,
        busy_retries: client.busy_retries,
        wall,
    })
}
