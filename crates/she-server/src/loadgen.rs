//! Workload driver for a running she-server: batched Zipf inserts with
//! interleaved queries, per-op latency histograms, and an optional
//! in-process mirror engine that checks every server answer bit-for-bit.
//!
//! Two pacing modes:
//!
//! * **closed-loop** — send the next request the moment the previous
//!   response lands; measures the server's saturated throughput.
//! * **open-loop** — each batch has a scheduled departure at the target
//!   rate, and latency is measured *from the schedule*, so server-side
//!   queueing shows up in the tail instead of silently stretching the
//!   run (coordinated-omission-safe).
//!
//! Verification works because everything is deterministic: one
//! connection, FIFO shard queues, and a seeded workload mean the server
//! applies exactly the per-shard insert order the mirror sees, so
//! matching answers must be bit-identical, not merely close.

use crate::client::Client;
use crate::cluster::{cluster_op, ClusterMap};
use crate::engine::{DirectEngine, EngineConfig};
use crate::protocol::{ReadpathStatus, Response, MAX_BATCH};
use she_core::convert::usize_of;
use she_hash::{mix64, Xoshiro256};
use she_metrics::{LatencyHistogram, NetReport};
use she_readpath::op as fast_op;
use she_streams::{CaidaLike, KeyStream, Zipf};
use std::collections::BTreeMap;
use std::io;
use std::time::{Duration, Instant};

/// Pacing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Back-to-back requests.
    Closed,
    /// Scheduled departures at `items_per_sec` inserted items per second.
    Open { items_per_sec: f64 },
}

/// A loadgen run description.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Total items to insert (streams A and B combined).
    pub items: u64,
    /// Keys per `INSERT_BATCH` frame.
    pub batch: usize,
    /// Total queries to interleave (cycling member/freq/card/sim).
    pub queries: u64,
    /// Pacing policy.
    pub mode: Mode,
    /// Zipf key universe.
    pub universe: usize,
    /// Zipf skew.
    pub skew: f64,
    /// Workload seed.
    pub seed: u64,
    /// Every `sim_every`-th batch feeds stream B (0 = never).
    pub sim_every: u64,
    /// Mirror the stream through an in-process [`DirectEngine`] with this
    /// sizing (must match the server's) and compare every answer.
    pub verify: Option<EngineConfig>,
    /// Send queries to this address instead of `addr` — the read-scaling
    /// pattern: inserts go to the primary, reads to a replica.
    pub read_from: Option<String>,
    /// Concurrent connections. Above 1 the run fans out over threads,
    /// each driving its own slice of the workload on its own connection,
    /// and the summary merges their latency histograms.
    pub connections: usize,
    /// Cluster mode: fetch the partition map from this seed node, route
    /// each batch's keys to their owning partition primary, and issue
    /// queries as scatter-gather `CLUSTER_QUERY`s. On a leg failure the
    /// map is re-fetched and the op retried, so the run rides through a
    /// failover without restarting. `addr` is ignored.
    pub cluster: Option<String>,
    /// Skip the first `offset` workload items (must be a multiple of
    /// `batch`): the keygen is fast-forwarded and the batch numbering
    /// continues, so a second run with `offset` picks up the exact same
    /// global stream where the first run's `items` left off.
    pub offset: u64,
    /// Issue point queries (member/freq) in batches of this many keys per
    /// round trip — `QUERY_BATCH` against one server,
    /// `CLUSTER_QUERY_BATCH` in cluster mode. 0 keeps them one-per-frame.
    /// Card/sim queries stay single either way.
    pub query_batch: usize,
    /// Fault-injection mode: `addr` is assumed to be a flaky path (a
    /// chaos proxy) to the server *really* listening here. On an insert
    /// transport error the run reconnects and uses this address's op-log
    /// head to decide, exactly-once, whether the batch landed before the
    /// fault or must be resent — so `--verify` stays bit-for-bit sound
    /// through injected resets. Requires a single connection and a server
    /// running with `--repl-log` (the head is the ledger).
    pub resync_addr: Option<String>,
    /// Cluster-mode fault hook: when opening an insert or coordinator
    /// leg to a primary address listed here, dial the mapped (flaky,
    /// chaos-proxied) address instead. Op-log-head polls and map
    /// refreshes keep the direct addresses — the ledger must read the
    /// truth. Primaries promoted mid-run are not in the table and are
    /// dialed direct: faults attack the stable topology, the reroute
    /// loop covers failover.
    pub cluster_via: BTreeMap<String, String>,
    /// Cluster-mode exactly-once recovery: keep a per-partition op-log
    /// head ledger so an insert retried after an injected fault is
    /// resent only when the primary really never applied it — which is
    /// what keeps `--verify` bit-for-bit under `--faults`. Requires a
    /// nonzero repl-log on every primary, this run being the sole
    /// writer, and the topology staying stable for the run: a failover
    /// mid-run surfaces as a clean head-went-backwards error, never as
    /// silent divergence.
    pub cluster_resync: bool,
    /// Fraction of operations issued as v5 `QUERY_FAST` reads, by item
    /// count: after each insert batch the run owes
    /// `items * ratio / (1 - ratio)` fast reads, so `0.95` yields the
    /// canonical 95/5 read-heavy mix. 0 disables the profile. Fast-read
    /// keys come from a *separate* seeded Zipf([`read_skew`][s]) draw
    /// over the same universe and key permutation as the writes, so the
    /// whole profile is reproducible from `seed` alone. Incompatible
    /// with `--verify` (fast answers are cache-served and only
    /// *bounded*-stale mid-stream) and with cluster mode (`QUERY_FAST`
    /// is single-server).
    ///
    /// [s]: LoadgenConfig::read_skew
    pub read_ratio: f64,
    /// Zipf exponent of the fast-read key distribution. Hot-key
    /// repetition is what exercises the server's mark cache; higher skew
    /// means higher hit rates.
    pub read_skew: f64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7487".to_string(),
            items: 200_000,
            batch: 512,
            queries: 2_000,
            mode: Mode::Closed,
            universe: 100_000,
            skew: 1.05,
            seed: 1,
            sim_every: 8,
            verify: None,
            read_from: None,
            connections: 1,
            cluster: None,
            offset: 0,
            query_batch: 0,
            resync_addr: None,
            cluster_via: BTreeMap::new(),
            cluster_resync: false,
            read_ratio: 0.0,
            read_skew: 1.1,
        }
    }
}

/// What a run did, with per-class latency.
#[derive(Debug)]
pub struct LoadSummary {
    /// Insert-side report (ops = batches, items = keys).
    pub insert: NetReport,
    /// Query-side report (ops = items = queries).
    pub query: NetReport,
    /// Fast-read report (ops = items = `QUERY_FAST`s; all zero unless
    /// the run used `read_ratio`).
    pub fast: NetReport,
    /// Server-side mark-cache hit rate over this run's window, from
    /// `CLUSTER_STATUS` counter deltas — `None` when the profile was off,
    /// the server's read path is disabled, or no fast read was counted.
    pub fast_hit_rate: Option<f64>,
    /// Queries whose answers were checked against the mirror.
    pub verified: u64,
    /// Checked answers that differed (must be 0 on a healthy run).
    pub mismatches: u64,
    /// `BUSY` backpressure rejections absorbed by the client.
    pub busy_retries: u64,
    /// Reconnects performed while riding through injected faults.
    pub reconnects: u64,
    /// Whole-run wall clock.
    pub wall: Duration,
}

impl LoadSummary {
    /// Render the ops/s + latency table.
    pub fn print(&self) {
        println!("{}", NetReport::header());
        println!("{}", self.insert.line());
        println!("{}", self.query.line());
        if self.fast.ops > 0 {
            println!("{}", self.fast.line());
        }
        let hit_rate = match self.fast_hit_rate {
            Some(r) => format!("  fast_hit_rate={r:.3}"),
            None => String::new(),
        };
        println!(
            "wall={:.2}s  busy_retries={}  reconnects={}  verified={}  mismatches={}{}",
            self.wall.as_secs_f64(),
            self.busy_retries,
            self.reconnects,
            self.verified,
            self.mismatches,
            hit_rate
        );
    }
}

/// Per-leg connect/op timeout in cluster mode: a dead primary must fail
/// the op quickly so the reroute loop can fetch a newer map.
const CLUSTER_LEG_TIMEOUT: Duration = Duration::from_secs(5);
/// How long a cluster op keeps rerouting before giving up — generously
/// above the cluster's heartbeat timeout so a failover completes within
/// the window.
const CLUSTER_REROUTE_WINDOW: Duration = Duration::from_secs(30);

/// Cluster-mode connection set: the partition map plus one lazily-opened
/// connection per partition primary.
///
/// Inserts are routed per key (order preserved within each partition, so
/// the per-shard suborder matches what a single sharded engine would
/// see); queries go out as `CLUSTER_QUERY` through the partition-0
/// primary acting as coordinator. Any leg failure drops the connections,
/// re-fetches the map from every node still known, and retries until
/// [`CLUSTER_REROUTE_WINDOW`] expires — which is how the loadgen keeps
/// verifying straight through a primary kill. Insert retries are
/// at-least-once per *leg* (never the whole batch), so a retry after a
/// failed connect cannot double-apply keys on the legs that already took
/// theirs.
struct ClusterConns {
    seed: String,
    map: ClusterMap,
    legs: Vec<Option<Client>>,
    /// `busy_retries` harvested from legs already dropped by reroutes.
    retired_busy: u64,
    /// Flaky detours for primary addresses (see
    /// [`LoadgenConfig::cluster_via`]); head polls stay direct.
    via: BTreeMap<String, String>,
    /// Per-partition exactly-once ledgers, armed by
    /// [`LoadgenConfig::cluster_resync`].
    ledgers: Option<Vec<PartLedger>>,
    /// Reconnects performed while riding through injected faults.
    reconnects: u64,
}

/// Exactly-once ledger for one partition's inserts under faults: the
/// primary's op-log head before the run sent anything, plus the frames
/// known applied on our behalf since — the same scheme as [`Resilient`],
/// one ledger per partition leg. The ledger assumes the partition keeps
/// its primary for the duration of the run: a promoted holder starts a
/// fresh log, which the head poll reads as the head going backwards and
/// surfaces as a clean error — never as silent divergence.
struct PartLedger {
    head0: u64,
    committed: u64,
}

impl ClusterConns {
    fn connect(
        seed: &str,
        via: &BTreeMap<String, String>,
        resync: bool,
    ) -> io::Result<ClusterConns> {
        let mut c = Client::connect_timeout(seed, CLUSTER_LEG_TIMEOUT)?;
        let map = c.cluster_map()?;
        if map.partitions.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "cluster map is empty"));
        }
        let ledgers = if resync {
            let mut l = Vec::with_capacity(map.partitions.len());
            for part in &map.partitions {
                // audit:allow(growth): one ledger per partition
                l.push(PartLedger { head0: poll_head(&part.primary.addr)?, committed: 0 });
            }
            Some(l)
        } else {
            None
        };
        let legs = (0..map.partitions.len()).map(|_| None).collect();
        Ok(ClusterConns {
            seed: seed.to_string(),
            map,
            legs,
            retired_busy: 0,
            via: via.clone(),
            ledgers,
            reconnects: 0,
        })
    }

    fn leg(&mut self, p: usize) -> io::Result<&mut Client> {
        if self.legs[p].is_none() {
            let addr = &self.map.partitions[p].primary.addr;
            let dial = self.via.get(addr).unwrap_or(addr);
            self.legs[p] = Some(Client::connect_timeout(dial, CLUSTER_LEG_TIMEOUT)?);
        }
        match self.legs[p].as_mut() {
            Some(c) => Ok(c),
            None => Err(io::Error::other("cluster leg vanished")),
        }
    }

    /// Drop every connection and adopt the newest map any reachable node
    /// will hand over (the seed stays in the candidate list even when it
    /// has fallen out of the map).
    fn refresh(&mut self) {
        for leg in &mut self.legs {
            if let Some(c) = leg.take() {
                self.retired_busy += c.busy_retries;
            }
        }
        let mut addrs: Vec<String> = vec![self.seed.clone()];
        // audit:allow(growth): one candidate address per cluster-map entry
        for part in &self.map.partitions {
            addrs.push(part.primary.addr.clone());
            for r in &part.replicas {
                addrs.push(r.addr.clone());
            }
        }
        for addr in addrs {
            if let Ok(mut c) = Client::connect_timeout(&addr, CLUSTER_LEG_TIMEOUT) {
                if let Ok(m) = c.cluster_map() {
                    if m.supersedes(&self.map) {
                        self.map = m;
                    }
                }
            }
        }
        self.legs = (0..self.map.partitions.len()).map(|_| None).collect();
    }

    /// Run `f` until it succeeds or the reroute window closes, refreshing
    /// the map between attempts.
    fn retrying<T>(&mut self, mut f: impl FnMut(&mut Self) -> io::Result<T>) -> io::Result<T> {
        let deadline = Instant::now() + CLUSTER_REROUTE_WINDOW;
        loop {
            match f(self) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(100));
                    self.refresh();
                }
            }
        }
    }

    fn insert_batch(&mut self, stream: u8, keys: &[u64]) -> io::Result<()> {
        let parts = self.map.partitions.len();
        let mut by_part: Vec<Vec<u64>> = vec![Vec::new(); parts];
        for &k in keys {
            // Bounded by the batch size: every key lands in exactly one
            // partition bucket.
            by_part[self.map.partition_of(k)].push(k); // audit:allow(growth): batch-bounded scatter buffer
        }
        for (p, sub) in by_part.iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            if self.ledgers.is_some() {
                self.insert_resilient(p, stream, sub)?;
            } else {
                self.retrying(|me| me.leg(p)?.insert_batch(stream, sub))?;
            }
        }
        Ok(())
    }

    /// Exactly-once insert on one partition leg over a flaky transport:
    /// after a faulted send, poll the primary's op-log head over its
    /// *direct* address and either count the frames as landed or resend
    /// exactly the missing tail. When the primary itself is unreachable
    /// (a kill, not just a fault), the map refresh between laps follows
    /// the promotion; a promoted successor starts a fresh log, which
    /// the head poll reads as the head going backwards and reports as a
    /// clean error rather than guessing at what landed.
    fn insert_resilient(&mut self, p: usize, stream: u8, sub: &[u64]) -> io::Result<()> {
        let frames = sub.len().div_ceil(MAX_BATCH.max(1)).max(1) as u64;
        let first = match self.leg(p).and_then(|c| c.insert_batch(stream, sub)) {
            Ok(_) => {
                self.commit(p, frames);
                return Ok(());
            }
            Err(e) => e,
        };
        for _ in 0..FAULT_RETRIES {
            std::thread::sleep(FAULT_BACKOFF);
            if let Some(c) = self.legs[p].take() {
                self.retired_busy += c.busy_retries;
            }
            self.reconnects += 1;
            let head = match poll_head(&self.map.partitions[p].primary.addr) {
                Ok(h) => h,
                Err(_) => {
                    // Unreachable primary: possibly mid-failover. Adopt
                    // any newer map and try its promoted successor.
                    self.refresh();
                    continue;
                }
            };
            let (head0, committed) = match self.ledgers.as_ref() {
                Some(l) => (l[p].head0, l[p].committed),
                None => return Err(io::Error::other("cluster insert ledger vanished")),
            };
            let Some(applied) = head.checked_sub(head0 + committed) else {
                return Err(io::Error::other(format!(
                    "partition {p} op-log head went backwards under faults: head {head}, \
                     committed {} ({first})",
                    head0 + committed
                )));
            };
            if applied > frames {
                return Err(io::Error::other(format!(
                    "partition {p} op-log head diverged under faults: {applied} frames \
                     applied, at most {frames} in flight ({first})"
                )));
            }
            if applied == frames {
                // Every frame landed; only the response was lost.
                self.commit(p, frames);
                return Ok(());
            }
            let resend = &sub[(usize_of(applied) * MAX_BATCH.max(1)).min(sub.len())..];
            if self.leg(p).and_then(|c| c.insert_batch(stream, resend)).is_ok() {
                self.commit(p, frames);
                return Ok(());
            }
        }
        Err(io::Error::other(format!(
            "partition {p} insert did not recover after {FAULT_RETRIES} reconnect \
             attempts ({first})"
        )))
    }

    fn commit(&mut self, p: usize, frames: u64) {
        if let Some(l) = self.ledgers.as_mut() {
            l[p].committed += frames;
        }
    }

    fn query(&mut self, op: u8, key: u64) -> io::Result<Response> {
        self.retrying(|me| me.leg(0)?.cluster_query(op, key))
    }

    fn query_batch(&mut self, op: u8, keys: &[u64]) -> io::Result<Vec<u64>> {
        self.retrying(|me| me.leg(0)?.cluster_query_batch(op, keys))
    }

    fn busy_retries(&self) -> u64 {
        self.retired_busy + self.legs.iter().flatten().map(|c| c.busy_retries).sum::<u64>()
    }
}

/// How many reconnect-and-resync laps a faulted op gets before the run
/// gives up. With [`FAULT_BACKOFF`] this tolerates a couple of seconds of
/// continuous chaos per op.
const FAULT_RETRIES: usize = 40;
/// Pause between fault-recovery laps — also the grace the server gets to
/// finish applying a frame that was delivered right before the fault, so
/// the head poll observes its final verdict.
const FAULT_BACKOFF: Duration = Duration::from_millis(50);

/// Ask the server (over a *direct*, non-flaky connection) for its op-log
/// head. A fresh connection per poll: the whole point is that the usual
/// path is unreliable.
fn poll_head(status_addr: &str) -> io::Result<u64> {
    let mut c = Client::connect_timeout(status_addr, Duration::from_secs(5))?;
    Ok(c.cluster_status()?.head)
}

/// Exactly-once insert recovery over a flaky transport.
///
/// The server's op log assigns one sequence number per applied
/// `INSERT_BATCH` frame, so `head - head0` is a ledger of how many of our
/// frames actually landed (the run must own the server exclusively and
/// the server must run with an op log). When an insert errors mid-flight
/// the response is lost but the outcome is not ambiguous: reconnect, poll
/// the head over the direct address, and either the frame applied (count
/// it, move on) or it did not (resend it). Calls larger than `MAX_BATCH`
/// split into several frames client-side; the head tells us how many
/// landed, so only the missing tail is resent.
struct Resilient {
    /// The flaky (proxied) address all real traffic uses.
    addr: String,
    /// The server's direct address, used only for head polls.
    status_addr: String,
    /// Op-log head before this run sent anything.
    head0: u64,
    /// Frames known applied by the server on our behalf.
    committed: u64,
    /// `busy_retries` harvested from connections dropped mid-run.
    retired_busy: u64,
    /// Reconnects performed so far.
    reconnects: u64,
}

impl Resilient {
    fn new(flaky_addr: &str, status_addr: &str) -> io::Result<Resilient> {
        let head0 = poll_head(status_addr)?;
        Ok(Resilient {
            addr: flaky_addr.to_string(),
            status_addr: status_addr.to_string(),
            head0,
            committed: 0,
            retired_busy: 0,
            reconnects: 0,
        })
    }

    /// Replace a dead flaky connection with a fresh one, keeping its
    /// busy-retry tally. Returns false when even the connect faulted.
    fn reconnect(&mut self, client: &mut Client) -> bool {
        match Client::connect_timeout(&self.addr, Duration::from_secs(5)) {
            Ok(fresh) => {
                let dead = std::mem::replace(client, fresh);
                self.retired_busy += dead.busy_retries;
                self.reconnects += 1;
                true
            }
            Err(_) => false,
        }
    }

    fn insert_batch(&mut self, client: &mut Client, stream: u8, keys: &[u64]) -> io::Result<()> {
        // Frames this call produces on the wire (the client splits
        // oversize key sets).
        let frames = keys.len().div_ceil(MAX_BATCH.max(1)).max(1) as u64;
        let first = match client.insert_batch(stream, keys) {
            Ok(_) => {
                self.committed += frames;
                return Ok(());
            }
            Err(e) => e,
        };
        for _ in 0..FAULT_RETRIES {
            std::thread::sleep(FAULT_BACKOFF);
            if !self.reconnect(client) {
                continue;
            }
            let head = match poll_head(&self.status_addr) {
                Ok(h) => h,
                Err(_) => continue,
            };
            let Some(applied) = head.checked_sub(self.head0 + self.committed) else {
                return Err(io::Error::other(format!(
                    "op-log head went backwards under faults: head {head}, committed {} ({first})",
                    self.head0 + self.committed
                )));
            };
            if applied > frames {
                return Err(io::Error::other(format!(
                    "op-log head diverged under faults: {applied} frames applied, \
                     at most {frames} in flight ({first})"
                )));
            }
            if applied == frames {
                // Every frame landed; only the response was lost.
                self.committed += frames;
                return Ok(());
            }
            // Resend the frames the ledger says are missing. Another
            // fault here just means the next lap re-reads the head.
            let resend = &keys[(usize_of(applied) * MAX_BATCH.max(1)).min(keys.len())..];
            if client.insert_batch(stream, resend).is_ok() {
                self.committed += frames;
                return Ok(());
            }
        }
        Err(io::Error::other(format!(
            "insert did not recover after {FAULT_RETRIES} reconnect attempts ({first})"
        )))
    }
}

/// Run a read-only op on the flaky connection, reconnect-retrying it when
/// fault recovery is armed (queries are idempotent, so plain resend is
/// sound — no ledger needed).
fn read_retry<T>(
    client: &mut Client,
    faulted: &mut Option<Resilient>,
    f: impl Fn(&mut Client) -> io::Result<T>,
) -> io::Result<T> {
    let first = match f(client) {
        Ok(v) => return Ok(v),
        Err(e) => e,
    };
    let Some(r) = faulted.as_mut() else { return Err(first) };
    for _ in 0..FAULT_RETRIES {
        std::thread::sleep(FAULT_BACKOFF);
        if !r.reconnect(client) {
            continue;
        }
        if let Ok(v) = f(client) {
            return Ok(v);
        }
    }
    Err(io::Error::other(format!(
        "query did not recover after {FAULT_RETRIES} reconnect attempts ({first})"
    )))
}

/// Where a run's requests go: one server (optionally with a separate
/// read connection, optionally with fault recovery) or a whole cluster.
enum Sink {
    Single { client: Client, reads: Option<Client>, faulted: Option<Resilient> },
    Cluster(ClusterConns),
}

impl Sink {
    fn insert_batch(&mut self, stream: u8, keys: &[u64]) -> io::Result<()> {
        match self {
            Sink::Single { client, faulted: Some(r), .. } => r.insert_batch(client, stream, keys),
            Sink::Single { client, .. } => client.insert_batch(stream, keys).map(|_| ()),
            Sink::Cluster(c) => c.insert_batch(stream, keys),
        }
    }

    fn query_member(&mut self, key: u64) -> io::Result<bool> {
        match self {
            Sink::Single { client, reads, faulted } => match reads.as_mut() {
                Some(r) => r.query_member(key),
                None => read_retry(client, faulted, |c| c.query_member(key)),
            },
            Sink::Cluster(c) => match c.query(cluster_op::MEMBER, key)? {
                Response::Bool(b) => Ok(b),
                other => Err(io::Error::other(format!("unexpected CLUSTER_QUERY reply {other:?}"))),
            },
        }
    }

    fn query_freq(&mut self, key: u64) -> io::Result<u64> {
        match self {
            Sink::Single { client, reads, faulted } => match reads.as_mut() {
                Some(r) => r.query_freq(key),
                None => read_retry(client, faulted, |c| c.query_freq(key)),
            },
            Sink::Cluster(c) => match c.query(cluster_op::FREQ, key)? {
                Response::U64(v) => Ok(v),
                other => Err(io::Error::other(format!("unexpected CLUSTER_QUERY reply {other:?}"))),
            },
        }
    }

    fn query_card(&mut self) -> io::Result<f64> {
        match self {
            Sink::Single { client, reads, faulted } => match reads.as_mut() {
                Some(r) => r.query_card(),
                None => read_retry(client, faulted, |c| c.query_card()),
            },
            Sink::Cluster(c) => match c.query(cluster_op::CARD, 0)? {
                Response::F64(v) => Ok(v),
                other => Err(io::Error::other(format!("unexpected CLUSTER_QUERY reply {other:?}"))),
            },
        }
    }

    fn query_sim(&mut self) -> io::Result<f64> {
        match self {
            Sink::Single { client, reads, faulted } => match reads.as_mut() {
                Some(r) => r.query_sim(),
                None => read_retry(client, faulted, |c| c.query_sim()),
            },
            Sink::Cluster(c) => match c.query(cluster_op::SIM, 0)? {
                Response::F64(v) => Ok(v),
                other => Err(io::Error::other(format!("unexpected CLUSTER_QUERY reply {other:?}"))),
            },
        }
    }

    /// Batched point queries: one round trip for N keys — `QUERY_BATCH`
    /// against one server, `CLUSTER_QUERY_BATCH` through the coordinator
    /// in cluster mode.
    fn query_batch(&mut self, op: u8, keys: &[u64]) -> io::Result<Vec<u64>> {
        match self {
            Sink::Single { client, reads, faulted } => match reads.as_mut() {
                Some(r) => r.query_batch(op, keys),
                None => read_retry(client, faulted, |c| c.query_batch(op, keys)),
            },
            Sink::Cluster(c) => c.query_batch(op, keys),
        }
    }

    /// One `QUERY_FAST` (v5), on the read connection when one is open.
    /// The answer value is discarded — the read-heavy profile measures
    /// latency and server-side cache behaviour, not correctness (that is
    /// `she fastcheck`'s job, at quiescence where the bound is exact).
    fn query_fast(&mut self, op: u8, key: u64) -> io::Result<()> {
        match self {
            Sink::Single { client, reads, faulted } => match reads.as_mut() {
                Some(r) => r.query_fast(op, key).map(|_| ()),
                None => read_retry(client, faulted, |c| c.query_fast(op, key)).map(|_| ()),
            },
            Sink::Cluster(_) => {
                Err(io::Error::new(io::ErrorKind::InvalidInput, "QUERY_FAST is single-server"))
            }
        }
    }

    fn busy_retries(&self) -> u64 {
        match self {
            Sink::Single { client, faulted, .. } => {
                client.busy_retries + faulted.as_ref().map_or(0, |r| r.retired_busy)
            }
            Sink::Cluster(c) => c.busy_retries(),
        }
    }

    fn reconnects(&self) -> u64 {
        match self {
            Sink::Single { faulted, .. } => faulted.as_ref().map_or(0, |r| r.reconnects),
            Sink::Cluster(c) => c.reconnects,
        }
    }
}

/// Book-keeping for the query side of a run.
struct QuerySide {
    lat: LatencyHistogram,
    sent: u64,
    verified: u64,
    mismatches: u64,
}

impl QuerySide {
    /// Issue one query (kind cycles member → freq → card → sim), check it
    /// against the mirror when one is present, and time it.
    fn issue(
        &mut self,
        sink: &mut Sink,
        mirror: &mut Option<DirectEngine>,
        key: u64,
    ) -> io::Result<()> {
        let t = Instant::now();
        let (got_bits, want_bits) = match self.sent % 4 {
            0 => {
                let got = sink.query_member(key)?;
                (got as u64, mirror.as_mut().map(|m| m.member(key) as u64))
            }
            1 => {
                let got = sink.query_freq(key)?;
                (got, mirror.as_mut().map(|m| m.frequency(key)))
            }
            2 => {
                let got = sink.query_card()?;
                (got.to_bits(), mirror.as_mut().map(|m| m.cardinality().to_bits()))
            }
            _ => {
                let got = sink.query_sim()?;
                (got.to_bits(), mirror.as_mut().map(|m| m.similarity().to_bits()))
            }
        };
        self.lat.record(t.elapsed());
        self.sent += 1;
        if let Some(want) = want_bits {
            self.verified += 1;
            self.mismatches += (got_bits != want) as u64;
        }
        Ok(())
    }

    /// Like [`QuerySide::issue`], but when `cfg.query_batch > 0` the two
    /// point-query slots of the member → freq → card → sim cycle go out
    /// as one batched round trip over `cfg.query_batch` derived keys.
    /// Card/sim have no batched form and keep their single frames.
    fn issue_any(
        &mut self,
        sink: &mut Sink,
        mirror: &mut Option<DirectEngine>,
        key: u64,
        cfg: &LoadgenConfig,
    ) -> io::Result<()> {
        if cfg.query_batch == 0 {
            return self.issue(sink, mirror, key);
        }
        match self.sent % 4 {
            0 => self.issue_batch(sink, mirror, key, cluster_op::MEMBER, cfg),
            1 => self.issue_batch(sink, mirror, key, cluster_op::FREQ, cfg),
            _ => self.issue(sink, mirror, key),
        }
    }

    /// One batched point query: `cfg.query_batch` keys derived
    /// deterministically from the anchor key and the query counter (so
    /// every connection and every rerun probes the same key set), each
    /// answer checked against the mirror when one is present.
    fn issue_batch(
        &mut self,
        sink: &mut Sink,
        mirror: &mut Option<DirectEngine>,
        key: u64,
        op: u8,
        cfg: &LoadgenConfig,
    ) -> io::Result<()> {
        let universe = cfg.universe.max(2) as u64;
        let keys: Vec<u64> = (0..cfg.query_batch as u64)
            .map(|j| mix64(key ^ (self.sent << 32) ^ j) % universe)
            .collect();
        let t = Instant::now();
        let got = sink.query_batch(op, &keys)?;
        self.lat.record(t.elapsed());
        self.sent += 1;
        if got.len() != keys.len() {
            return Err(io::Error::other(format!(
                "batched query returned {} values for {} keys",
                got.len(),
                keys.len()
            )));
        }
        if let Some(m) = mirror.as_mut() {
            for (&k, &g) in keys.iter().zip(&got) {
                let want =
                    if op == cluster_op::MEMBER { u64::from(m.member(k)) } else { m.frequency(k) };
                self.verified += 1;
                self.mismatches += (g != want) as u64;
            }
        }
        Ok(())
    }
}

/// Read the server's read-path counters (v5), or `None` when the server
/// is unreachable or serves without `--readpath`.
fn poll_readpath(addr: &str) -> Option<ReadpathStatus> {
    let mut c = Client::connect_timeout(addr, Duration::from_secs(5)).ok()?;
    let info = c.cluster_status().ok()?;
    info.readpath.enabled.then_some(info.readpath)
}

/// Drive the workload against `cfg.addr` (queries against
/// `cfg.read_from` when set), fanning out over `cfg.connections`
/// threads. Returns an error on transport failure; verification
/// mismatches are *reported*, not fatal (callers check
/// [`LoadSummary::mismatches`]).
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadSummary> {
    if cfg.read_ratio != 0.0 {
        if !(0.0..1.0).contains(&cfg.read_ratio) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "--read-ratio must be in [0, 1)",
            ));
        }
        if cfg.verify.is_some() {
            // Mid-stream fast answers are cache-served under a staleness
            // *bound*, not bit-for-bit; `she fastcheck` verifies them at
            // quiescence instead.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "--verify checks authoritative answers; it cannot run with --read-ratio",
            ));
        }
        if cfg.cluster.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "--read-ratio drives single-server QUERY_FAST, not a cluster",
            ));
        }
    }
    // Hit rate is a server-side delta so it stays exact across fanned-out
    // connections (each thread's own before/after windows would overlap).
    let status_addr = cfg.read_from.as_deref().unwrap_or(&cfg.addr);
    let before = if cfg.read_ratio > 0.0 { poll_readpath(status_addr) } else { None };
    let mut summary = if cfg.connections <= 1 { run_single(cfg) } else { run_fanout(cfg) }?;
    if let (Some(b), Some(a)) = (&before, before.as_ref().and_then(|_| poll_readpath(status_addr)))
    {
        let hits = a.hits.saturating_sub(b.hits);
        let misses = a.misses.saturating_sub(b.misses);
        if hits + misses > 0 {
            summary.fast_hit_rate = Some(hits as f64 / (hits + misses) as f64);
        }
    }
    Ok(summary)
}

/// The `connections > 1` path of [`run`]: per-thread workload slices.
fn run_fanout(cfg: &LoadgenConfig) -> io::Result<LoadSummary> {
    if cfg.verify.is_some() {
        // Bit-for-bit verification needs one connection's FIFO order.
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "--verify requires a single connection",
        ));
    }
    if cfg.offset > 0 {
        // --offset continues one deterministic stream; fanned-out threads
        // each reseed, so there is no single stream to continue.
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "--offset requires a single connection",
        ));
    }
    if cfg.resync_addr.is_some() || cfg.cluster_resync {
        // Head-based recovery attributes every op-log advance to the one
        // connection it owns; concurrent writers would make the ledger
        // ambiguous.
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "fault injection requires a single connection",
        ));
    }
    let conns = cfg.connections as u64;
    let handles: Vec<_> = (0..conns)
        .map(|i| {
            let mut sub = cfg.clone();
            sub.connections = 1;
            // Each connection drives its own slice of the item and query
            // budgets with a distinct workload seed and a fair share of
            // the open-loop rate.
            sub.items = cfg.items / conns + u64::from(i < cfg.items % conns);
            sub.queries = cfg.queries / conns + u64::from(i < cfg.queries % conns);
            sub.seed = cfg.seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).max(1);
            if let Mode::Open { items_per_sec } = cfg.mode {
                sub.mode = Mode::Open { items_per_sec: items_per_sec / conns as f64 };
            }
            std::thread::spawn(move || run_single(&sub))
        })
        .collect();

    let mut insert = NetReport::new("insert_batch", 0, 0, Duration::ZERO, LatencyHistogram::new());
    let mut query = NetReport::new("query", 0, 0, Duration::ZERO, LatencyHistogram::new());
    let mut fast = NetReport::new("query_fast", 0, 0, Duration::ZERO, LatencyHistogram::new());
    let (mut verified, mut mismatches, mut busy, mut reconnects, mut wall) =
        (0, 0, 0, 0, Duration::ZERO);
    for h in handles {
        let s = h.join().map_err(|_| io::Error::other("loadgen connection thread panicked"))??;
        insert.ops += s.insert.ops;
        insert.items += s.insert.items;
        insert.latency.merge(&s.insert.latency);
        query.ops += s.query.ops;
        query.items += s.query.items;
        query.latency.merge(&s.query.latency);
        fast.ops += s.fast.ops;
        fast.items += s.fast.items;
        fast.latency.merge(&s.fast.latency);
        verified += s.verified;
        mismatches += s.mismatches;
        busy += s.busy_retries;
        reconnects += s.reconnects;
        wall = wall.max(s.wall);
    }
    insert.wall = wall;
    query.wall = wall;
    fast.wall = wall;
    insert.retries = busy;
    Ok(LoadSummary {
        insert,
        query,
        fast,
        fast_hit_rate: None,
        verified,
        mismatches,
        busy_retries: busy,
        reconnects,
        wall,
    })
}

/// One connection's worth of [`run`].
fn run_single(cfg: &LoadgenConfig) -> io::Result<LoadSummary> {
    let batch = cfg.batch.max(1) as u64;
    if !cfg.offset.is_multiple_of(batch) {
        // Batch numbering (and with it the A/B stream cycle) must line up
        // with the run that produced the first `offset` items.
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "--offset must be a multiple of --batch",
        ));
    }
    let mut sink = match &cfg.cluster {
        Some(seed) => {
            if cfg.read_from.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "--read-from does not apply in cluster mode (queries scatter-gather)",
                ));
            }
            if cfg.resync_addr.is_some() {
                // Cluster mode already rides through faults with its own
                // reroute loop; head-based recovery is single-server.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "fault injection applies to a single server, not a cluster",
                ));
            }
            let conns = ClusterConns::connect(seed, &cfg.cluster_via, cfg.cluster_resync)?;
            if let Some(v) = &cfg.verify {
                // The scatter-gather merge runs in partition order; the
                // mirror's shard order must be the same order.
                if v.shards != conns.map.partitions.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "--verify in cluster mode needs --shards == partition count",
                    ));
                }
            }
            Sink::Cluster(conns)
        }
        None => {
            let client = Client::connect(&cfg.addr)?;
            // Reads may go to a different node (a replica); the mirror
            // cannot vouch for a lagging replica, so the combination is
            // refused.
            let reads = match &cfg.read_from {
                Some(addr) if cfg.verify.is_some() => {
                    let _ = addr;
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "--verify compares against the write connection; it cannot read from a replica",
                    ));
                }
                Some(addr) => Some(Client::connect(addr)?),
                None => None,
            };
            let faulted = match &cfg.resync_addr {
                Some(status_addr) => {
                    if reads.is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            "fault injection keeps reads on the write connection (--read-from refused)",
                        ));
                    }
                    Some(Resilient::new(&cfg.addr, status_addr)?)
                }
                None => None,
            };
            Sink::Single { client, reads, faulted }
        }
    };
    let mut mirror = cfg.verify.map(DirectEngine::new);
    let mut keygen = CaidaLike::new(cfg.universe.max(2), cfg.skew, cfg.seed);
    for _ in 0..cfg.offset {
        // Fast-forward past the items a previous run already sent.
        keygen.next_key();
    }

    let first_batch = cfg.offset / batch;
    let n_batches = cfg.items.div_ceil(batch);
    // Interleave queries evenly: one after roughly every `stride`-th batch.
    let stride = if cfg.queries == 0 { u64::MAX } else { n_batches.div_ceil(cfg.queries).max(1) };

    let mut insert_lat = LatencyHistogram::new();
    let mut queries =
        QuerySide { lat: LatencyHistogram::new(), sent: 0, verified: 0, mismatches: 0 };
    // The read-heavy profile: a separate, identically seeded Zipf draw
    // over the same universe + mix64 permutation the writes use, so the
    // fast reads probe real (mostly hot) keys deterministically.
    let read_zipf = (cfg.read_ratio > 0.0).then(|| Zipf::new(cfg.universe.max(2), cfg.read_skew));
    let mut read_rng = Xoshiro256::new(cfg.seed ^ 0xFA57_4EAD_5EED);
    let mut read_debt = 0.0f64;
    let mut fast_lat = LatencyHistogram::new();
    let mut fast_sent = 0u64;
    let mut sent_items = 0u64;
    let mut last_key = 0u64;
    let start = Instant::now();

    for b in 0..n_batches {
        let take = usize_of(batch.min(cfg.items - sent_items));
        let keys = keygen.take_vec(take);
        last_key = *keys.last().unwrap_or(&last_key);
        // Stream selection runs on the *global* batch number so an
        // offset continuation keeps the same A/B cycle.
        let gb = first_batch + b;
        let stream =
            if cfg.sim_every > 0 && gb % cfg.sim_every == cfg.sim_every - 1 { 1u8 } else { 0u8 };

        // Open-loop: wait for this batch's scheduled departure, then
        // charge latency from the schedule, not from the actual send.
        let op_start = match cfg.mode {
            Mode::Closed => Instant::now(),
            Mode::Open { items_per_sec } => {
                let due = start + Duration::from_secs_f64(sent_items as f64 / items_per_sec);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                due
            }
        };
        sink.insert_batch(stream, &keys)?;
        insert_lat.record(op_start.elapsed());
        sent_items += take as u64;

        if let Some(m) = mirror.as_mut() {
            for &k in &keys {
                m.insert(stream, k);
            }
        }

        if let Some(z) = &read_zipf {
            // Keep reads/(reads + items) at the ratio: each inserted item
            // accrues ratio/(1-ratio) fast reads, fractional debt carried.
            read_debt += take as f64 * cfg.read_ratio / (1.0 - cfg.read_ratio);
            while read_debt >= 1.0 {
                read_debt -= 1.0;
                let key = mix64(z.sample(&mut read_rng) as u64);
                let op = if fast_sent.is_multiple_of(2) { fast_op::MEMBER } else { fast_op::FREQ };
                let t = Instant::now();
                sink.query_fast(op, key)?;
                fast_lat.record(t.elapsed());
                fast_sent += 1;
            }
        }

        if b % stride == stride - 1 && queries.sent < cfg.queries {
            queries.issue_any(&mut sink, &mut mirror, last_key, cfg)?;
        }
    }

    // Any remaining query budget runs back-to-back at the end (small
    // `items` with large `queries` would otherwise under-deliver).
    while queries.sent < cfg.queries {
        queries.issue_any(&mut sink, &mut mirror, last_key, cfg)?;
    }

    let wall = start.elapsed();
    let busy_retries = sink.busy_retries();
    Ok(LoadSummary {
        insert: NetReport::new("insert_batch", n_batches, sent_items, wall, insert_lat)
            .with_retries(busy_retries),
        query: NetReport::new("query", queries.sent, queries.sent, wall, queries.lat),
        fast: NetReport::new("query_fast", fast_sent, fast_sent, wall, fast_lat),
        fast_hit_rate: None,
        verified: queries.verified,
        mismatches: queries.mismatches,
        busy_retries,
        reconnects: sink.reconnects(),
        wall,
    })
}
