//! Workload driver for a running she-server: batched Zipf inserts with
//! interleaved queries, per-op latency histograms, and an optional
//! in-process mirror engine that checks every server answer bit-for-bit.
//!
//! Two pacing modes:
//!
//! * **closed-loop** — send the next request the moment the previous
//!   response lands; measures the server's saturated throughput.
//! * **open-loop** — each batch has a scheduled departure at the target
//!   rate, and latency is measured *from the schedule*, so server-side
//!   queueing shows up in the tail instead of silently stretching the
//!   run (coordinated-omission-safe).
//!
//! Verification works because everything is deterministic: one
//! connection, FIFO shard queues, and a seeded workload mean the server
//! applies exactly the per-shard insert order the mirror sees, so
//! matching answers must be bit-identical, not merely close.

use crate::client::Client;
use crate::engine::{DirectEngine, EngineConfig};
use she_core::convert::usize_of;
use she_metrics::{LatencyHistogram, NetReport};
use she_streams::{CaidaLike, KeyStream};
use std::io;
use std::time::{Duration, Instant};

/// Pacing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Back-to-back requests.
    Closed,
    /// Scheduled departures at `items_per_sec` inserted items per second.
    Open { items_per_sec: f64 },
}

/// A loadgen run description.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Total items to insert (streams A and B combined).
    pub items: u64,
    /// Keys per `INSERT_BATCH` frame.
    pub batch: usize,
    /// Total queries to interleave (cycling member/freq/card/sim).
    pub queries: u64,
    /// Pacing policy.
    pub mode: Mode,
    /// Zipf key universe.
    pub universe: usize,
    /// Zipf skew.
    pub skew: f64,
    /// Workload seed.
    pub seed: u64,
    /// Every `sim_every`-th batch feeds stream B (0 = never).
    pub sim_every: u64,
    /// Mirror the stream through an in-process [`DirectEngine`] with this
    /// sizing (must match the server's) and compare every answer.
    pub verify: Option<EngineConfig>,
    /// Send queries to this address instead of `addr` — the read-scaling
    /// pattern: inserts go to the primary, reads to a replica.
    pub read_from: Option<String>,
    /// Concurrent connections. Above 1 the run fans out over threads,
    /// each driving its own slice of the workload on its own connection,
    /// and the summary merges their latency histograms.
    pub connections: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7487".to_string(),
            items: 200_000,
            batch: 512,
            queries: 2_000,
            mode: Mode::Closed,
            universe: 100_000,
            skew: 1.05,
            seed: 1,
            sim_every: 8,
            verify: None,
            read_from: None,
            connections: 1,
        }
    }
}

/// What a run did, with per-class latency.
#[derive(Debug)]
pub struct LoadSummary {
    /// Insert-side report (ops = batches, items = keys).
    pub insert: NetReport,
    /// Query-side report (ops = items = queries).
    pub query: NetReport,
    /// Queries whose answers were checked against the mirror.
    pub verified: u64,
    /// Checked answers that differed (must be 0 on a healthy run).
    pub mismatches: u64,
    /// `BUSY` backpressure rejections absorbed by the client.
    pub busy_retries: u64,
    /// Whole-run wall clock.
    pub wall: Duration,
}

impl LoadSummary {
    /// Render the ops/s + latency table.
    pub fn print(&self) {
        println!("{}", NetReport::header());
        println!("{}", self.insert.line());
        println!("{}", self.query.line());
        println!(
            "wall={:.2}s  busy_retries={}  verified={}  mismatches={}",
            self.wall.as_secs_f64(),
            self.busy_retries,
            self.verified,
            self.mismatches
        );
    }
}

/// Book-keeping for the query side of a run.
struct QuerySide {
    lat: LatencyHistogram,
    sent: u64,
    verified: u64,
    mismatches: u64,
}

impl QuerySide {
    /// Issue one query (kind cycles member → freq → card → sim), check it
    /// against the mirror when one is present, and time it.
    fn issue(
        &mut self,
        client: &mut Client,
        mirror: &mut Option<DirectEngine>,
        key: u64,
    ) -> io::Result<()> {
        let t = Instant::now();
        let (got_bits, want_bits) = match self.sent % 4 {
            0 => {
                let got = client.query_member(key)?;
                (got as u64, mirror.as_mut().map(|m| m.member(key) as u64))
            }
            1 => {
                let got = client.query_freq(key)?;
                (got, mirror.as_mut().map(|m| m.frequency(key)))
            }
            2 => {
                let got = client.query_card()?;
                (got.to_bits(), mirror.as_mut().map(|m| m.cardinality().to_bits()))
            }
            _ => {
                let got = client.query_sim()?;
                (got.to_bits(), mirror.as_mut().map(|m| m.similarity().to_bits()))
            }
        };
        self.lat.record(t.elapsed());
        self.sent += 1;
        if let Some(want) = want_bits {
            self.verified += 1;
            self.mismatches += (got_bits != want) as u64;
        }
        Ok(())
    }
}

/// Drive the workload against `cfg.addr` (queries against
/// `cfg.read_from` when set), fanning out over `cfg.connections`
/// threads. Returns an error on transport failure; verification
/// mismatches are *reported*, not fatal (callers check
/// [`LoadSummary::mismatches`]).
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadSummary> {
    if cfg.connections <= 1 {
        return run_single(cfg);
    }
    if cfg.verify.is_some() {
        // Bit-for-bit verification needs one connection's FIFO order.
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "--verify requires a single connection",
        ));
    }
    let conns = cfg.connections as u64;
    let handles: Vec<_> = (0..conns)
        .map(|i| {
            let mut sub = cfg.clone();
            sub.connections = 1;
            // Each connection drives its own slice of the item and query
            // budgets with a distinct workload seed and a fair share of
            // the open-loop rate.
            sub.items = cfg.items / conns + u64::from(i < cfg.items % conns);
            sub.queries = cfg.queries / conns + u64::from(i < cfg.queries % conns);
            sub.seed = cfg.seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).max(1);
            if let Mode::Open { items_per_sec } = cfg.mode {
                sub.mode = Mode::Open { items_per_sec: items_per_sec / conns as f64 };
            }
            std::thread::spawn(move || run_single(&sub))
        })
        .collect();

    let mut insert = NetReport::new("insert_batch", 0, 0, Duration::ZERO, LatencyHistogram::new());
    let mut query = NetReport::new("query", 0, 0, Duration::ZERO, LatencyHistogram::new());
    let (mut verified, mut mismatches, mut busy, mut wall) = (0, 0, 0, Duration::ZERO);
    for h in handles {
        let s = h.join().map_err(|_| io::Error::other("loadgen connection thread panicked"))??;
        insert.ops += s.insert.ops;
        insert.items += s.insert.items;
        insert.latency.merge(&s.insert.latency);
        query.ops += s.query.ops;
        query.items += s.query.items;
        query.latency.merge(&s.query.latency);
        verified += s.verified;
        mismatches += s.mismatches;
        busy += s.busy_retries;
        wall = wall.max(s.wall);
    }
    insert.wall = wall;
    query.wall = wall;
    insert.retries = busy;
    Ok(LoadSummary { insert, query, verified, mismatches, busy_retries: busy, wall })
}

/// One connection's worth of [`run`].
fn run_single(cfg: &LoadgenConfig) -> io::Result<LoadSummary> {
    let mut client = Client::connect(&cfg.addr)?;
    // Reads may go to a different node (a replica); the mirror cannot
    // vouch for a lagging replica, so the combination is refused.
    let mut query_client = match &cfg.read_from {
        Some(addr) if cfg.verify.is_some() => {
            let _ = addr;
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "--verify compares against the write connection; it cannot read from a replica",
            ));
        }
        Some(addr) => Some(Client::connect(addr)?),
        None => None,
    };
    let mut mirror = cfg.verify.map(DirectEngine::new);
    let mut keygen = CaidaLike::new(cfg.universe.max(2), cfg.skew, cfg.seed);

    let batch = cfg.batch.max(1) as u64;
    let n_batches = cfg.items.div_ceil(batch);
    // Interleave queries evenly: one after roughly every `stride`-th batch.
    let stride = if cfg.queries == 0 { u64::MAX } else { n_batches.div_ceil(cfg.queries).max(1) };

    let mut insert_lat = LatencyHistogram::new();
    let mut queries =
        QuerySide { lat: LatencyHistogram::new(), sent: 0, verified: 0, mismatches: 0 };
    let mut sent_items = 0u64;
    let mut last_key = 0u64;
    let start = Instant::now();

    for b in 0..n_batches {
        let take = usize_of(batch.min(cfg.items - sent_items));
        let keys = keygen.take_vec(take);
        last_key = *keys.last().unwrap_or(&last_key);
        let stream =
            if cfg.sim_every > 0 && b % cfg.sim_every == cfg.sim_every - 1 { 1u8 } else { 0u8 };

        // Open-loop: wait for this batch's scheduled departure, then
        // charge latency from the schedule, not from the actual send.
        let op_start = match cfg.mode {
            Mode::Closed => Instant::now(),
            Mode::Open { items_per_sec } => {
                let due = start + Duration::from_secs_f64(sent_items as f64 / items_per_sec);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                due
            }
        };
        client.insert_batch(stream, &keys)?;
        insert_lat.record(op_start.elapsed());
        sent_items += take as u64;

        if let Some(m) = mirror.as_mut() {
            for &k in &keys {
                m.insert(stream, k);
            }
        }

        if b % stride == stride - 1 && queries.sent < cfg.queries {
            queries.issue(query_client.as_mut().unwrap_or(&mut client), &mut mirror, last_key)?;
        }
    }

    // Any remaining query budget runs back-to-back at the end (small
    // `items` with large `queries` would otherwise under-deliver).
    while queries.sent < cfg.queries {
        queries.issue(query_client.as_mut().unwrap_or(&mut client), &mut mirror, last_key)?;
    }

    let wall = start.elapsed();
    Ok(LoadSummary {
        insert: NetReport::new("insert_batch", n_batches, sent_items, wall, insert_lat)
            .with_retries(client.busy_retries),
        query: NetReport::new("query", queries.sent, queries.sent, wall, queries.lat),
        verified: queries.verified,
        mismatches: queries.mismatches,
        busy_retries: client.busy_retries,
        wall,
    })
}
