//! The she-server wire protocol: message types and their binary encoding.
//!
//! Every message travels as one *frame*: a `u32` little-endian payload
//! length followed by the payload. The payload's first byte is an opcode;
//! the rest is the fixed layout documented per variant (all integers
//! little-endian). `docs/PROTOCOL.md` is the normative description; this
//! module is its executable form.
//!
//! Requests carry a `stream` tag (0 = stream A, 1 = stream B) on inserts
//! so the similarity pair can be fed over the same connection.
//!
//! Protocol **v2** adds snapshot transport (`HELLO`, `SNAPSHOT`,
//! `SNAPSHOT_ALL`, `RESTORE`, `BLOB`, `HELLO_REPLY`). Version negotiation
//! is optional and client-initiated: a v2 client may open with `HELLO`;
//! a v1 server answers `ERR` (unknown opcode) and the client downgrades.
//! Every v1 message is unchanged, so v1 clients work against v2 servers
//! without negotiating.
//!
//! Protocol **v3** adds replication (`REPL_BOOTSTRAP`, `REPL_SUBSCRIBE`,
//! `REPL_ACK`, `CLUSTER_STATUS` and their responses, plus the
//! `NOT_PRIMARY` / `LOG_TRUNCATED` errors). Like v2, every earlier
//! message is unchanged, so v1/v2 clients keep working unmodified.
//!
//! Protocol **v4** adds the partitioned cluster (`CLUSTER_JOIN`,
//! `CLUSTER_MAP`, `CLUSTER_QUERY`, `CLUSTER_MAP_REPLY`): push-pull gossip
//! of the membership map and coordinator-side scatter-gather queries (see
//! `crate::cluster` and `docs/CLUSTER.md`), plus the batch point queries
//! (`QUERY_BATCH`, `CLUSTER_QUERY_BATCH`, `U64S`): N member/freq keys per
//! round-trip, grouped per partition on the scatter path. As before,
//! every earlier message is unchanged and older clients keep working
//! unmodified.
//!
//! Protocol **v5** adds the accelerated read path (`QUERY_FAST`): point
//! queries answered inline on the reactor from the `she-readpath` fast
//! summary and mark cache, never queued to a shard worker. It also
//! extends `CLUSTER_STATUS_REPLY` with per-shard queue depths and the
//! read-path counters; the extension rides at the end of the payload, so
//! v3/v4 decoders that stop at the peer list keep working and a v5
//! decoder reading a v4 reply fills the tail with zeros.
//!
//! Protocol **v6** carries replication factors: the `ClusterMap` payload
//! (inside `CLUSTER_JOIN` and `CLUSTER_MAP_REPLY`) grows a trailing
//! `rf u16` after the partition list, and `REPL_SUBSCRIBE` grows a
//! trailing `node_id u64` identifying the subscriber (0 = anonymous, the
//! v5 meaning). Both ride at the end of their frames, so v5 decoders
//! stop short of them and a v6 decoder reading v5 bytes falls back to
//! the old semantics (inferred rf, anonymous subscriber).

use crate::cluster::ClusterMap;
use she_core::convert::{le_u64s, usize_of};
use she_core::frame::{FrameError, Reader};

/// The protocol version this build speaks (reported by `HELLO`).
pub const PROTOCOL_VERSION: u16 = 6;

/// Hard cap on a frame payload; anything larger is a protocol error on
/// both ends (prevents a hostile length prefix from allocating memory).
/// Raised in v2 so a `BLOB` can carry a whole-server checkpoint.
pub const MAX_FRAME: usize = 16 << 20;

/// Maximum number of keys a single `InsertBatch` can carry. Pinned to the
/// v1 budget (1 MiB frames) so batches from either protocol version stay
/// valid on the other.
pub const MAX_BATCH: usize = ((1 << 20) - 6) / 8;

pub mod opcode {
    pub const INSERT: u8 = 0x01;
    pub const INSERT_BATCH: u8 = 0x02;
    pub const HELLO: u8 = 0x05;
    pub const QUERY_MEMBER: u8 = 0x10;
    pub const QUERY_CARD: u8 = 0x11;
    pub const QUERY_FREQ: u8 = 0x12;
    pub const QUERY_SIM: u8 = 0x13;
    pub const QUERY_BATCH: u8 = 0x14;
    pub const QUERY_FAST: u8 = 0x15;
    pub const STATS: u8 = 0x20;
    pub const SNAPSHOT: u8 = 0x21;
    pub const SNAPSHOT_ALL: u8 = 0x22;
    pub const RESTORE: u8 = 0x23;
    pub const SHUTDOWN: u8 = 0x2F;
    pub const REPL_BOOTSTRAP: u8 = 0x30;
    pub const REPL_SUBSCRIBE: u8 = 0x31;
    pub const REPL_ACK: u8 = 0x32;
    pub const CLUSTER_STATUS: u8 = 0x33;
    pub const CLUSTER_JOIN: u8 = 0x34;
    pub const CLUSTER_MAP: u8 = 0x35;
    pub const CLUSTER_QUERY: u8 = 0x36;
    pub const CLUSTER_QUERY_BATCH: u8 = 0x37;

    pub const OK: u8 = 0x80;
    pub const BOOL: u8 = 0x81;
    pub const U64: u8 = 0x82;
    pub const F64: u8 = 0x83;
    pub const STATS_REPLY: u8 = 0x84;
    pub const BLOB: u8 = 0x85;
    pub const HELLO_REPLY: u8 = 0x86;
    pub const REPL_OP: u8 = 0x87;
    pub const REPL_HEARTBEAT: u8 = 0x88;
    pub const CLUSTER_STATUS_REPLY: u8 = 0x89;
    pub const CLUSTER_MAP_REPLY: u8 = 0x8A;
    pub const U64S: u8 = 0x8B;
    pub const ERR: u8 = 0xE0;
    pub const BUSY: u8 = 0xE1;
    pub const NOT_PRIMARY: u8 = 0xE2;
    pub const LOG_TRUNCATED: u8 = 0xE3;
    pub const OVERLOADED: u8 = 0xE4;
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Insert one key into stream 0 (A) or 1 (B).
    Insert { stream: u8, key: u64 },
    /// Insert a batch of keys into one stream (bounded by [`MAX_BATCH`]).
    InsertBatch { stream: u8, keys: Vec<u64> },
    /// Sliding-window membership of `key` (answered from stream A's filter).
    QueryMember { key: u64 },
    /// Sliding-window cardinality of stream A (sums the shard estimates).
    QueryCard,
    /// Sliding-window frequency of `key` in stream A.
    QueryFreq { key: u64 },
    /// Sliding-window Jaccard similarity between streams A and B.
    QuerySim,
    /// v4: answer one point query per key in a single round-trip. `op` is
    /// one of the per-key [`crate::cluster::cluster_op`] codes (`MEMBER`
    /// or `FREQ`); the answer is [`Response::U64s`], one value per key in
    /// request order (membership encodes as 0/1). Bounded by
    /// [`MAX_BATCH`] like `InsertBatch`.
    QueryBatch {
        /// The per-key operation (`cluster_op::{MEMBER, FREQ}`).
        op: u8,
        /// The keys, answered in order.
        keys: Vec<u64>,
    },
    /// v5: accelerated point query, answered inline on the reactor from
    /// the read path (fast summary + mark cache) without queuing to a
    /// shard worker. `op` is a `she-readpath` op code (`MEMBER` → [`
    /// Response::Bool`], `FREQ` → [`Response::U64`], `TOPK` →
    /// [`Response::U64s`] as alternating key/estimate pairs, with `key`
    /// carrying `n`). Servers without `--readpath` answer
    /// [`Response::Err`].
    QueryFast {
        /// The read-path operation (`she_readpath::op::{MEMBER, FREQ, TOPK}`).
        op: u8,
        /// The key (or `n` for `TOPK`).
        key: u64,
    },
    /// Server / per-shard counters.
    Stats,
    /// v2: announce the client's protocol version; the server answers
    /// [`Response::Hello`] with the version both sides will speak.
    Hello { version: u16 },
    /// v2: serialize one shard's engine state (quiescent, via its worker).
    Snapshot { shard: u32 },
    /// v2: serialize every shard into one checkpoint frame.
    SnapshotAll,
    /// v2: replace one shard's engine state with a shard frame.
    Restore { shard: u32, data: Vec<u8> },
    /// v3: capture a replica bootstrap package — a quiescent checkpoint
    /// plus the op-log sequence number it reflects (answered with
    /// [`Response::Blob`] carrying a `BOOTSTRAP` frame).
    ReplBootstrap,
    /// v3: turn this connection into a replication feed starting at
    /// `from_seq` (the first record the subscriber has *not* applied).
    /// The server answers with a stream of [`Response::ReplOp`] /
    /// [`Response::ReplHeartbeat`] instead of one response. v6 appends
    /// the subscriber's cluster `node_id` so the primary can label the
    /// peer in `CLUSTER_STATUS`; 0 means anonymous (the v5 wire form,
    /// which omits the field entirely).
    ReplSubscribe { from_seq: u64, node_id: u64 },
    /// v3: sent *by the subscriber* on a replication feed — everything
    /// up to `seq` has been applied (flow-control / cluster-status only).
    ReplAck { seq: u64 },
    /// v3: this node's replication role, log positions, and peers.
    ClusterStatus,
    /// v4: push-pull gossip — the sender offers its view of the cluster
    /// map; the receiver adopts it if newer and answers
    /// [`Response::ClusterMapReply`] with its own (possibly just-updated)
    /// view. `from_node` identifies the gossiping node for diagnostics.
    ClusterJoin {
        /// The sender's cluster node id.
        from_node: u64,
        /// The sender's current view of the map.
        map: ClusterMap,
    },
    /// v4: fetch this node's current cluster map (client re-routing).
    ClusterMapGet,
    /// v4: scatter-gather query, merged by the coordinator (this node)
    /// across every partition: `op` is one of
    /// [`crate::cluster::cluster_op`], `key` is ignored by the
    /// whole-stream ops (card, sim).
    ClusterQuery {
        /// The merge operation (`cluster_op::{MEMBER, CARD, FREQ, SIM}`).
        op: u8,
        /// The key, for the routed ops (member, freq).
        key: u64,
    },
    /// v4: scatter-gather batch query — N keys per scatter round-trip.
    /// The coordinator groups the keys by owning partition, sends one
    /// [`Request::QueryBatch`] leg per involved partition, and reassembles
    /// the answers into one [`Response::U64s`] in request order. Only the
    /// per-key ops (`cluster_op::{MEMBER, FREQ}`) are valid.
    ClusterQueryBatch {
        /// The per-key operation (`cluster_op::{MEMBER, FREQ}`).
        op: u8,
        /// The keys, answered in order.
        keys: Vec<u64>,
    },
    /// Drain the queues and stop the server.
    Shutdown,
}

/// Per-shard counters reported by [`Response::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Items inserted into this shard so far.
    pub inserts: u64,
    /// Queries answered by this shard so far.
    pub queries: u64,
    /// Sketch memory held by this shard, in bits.
    pub memory_bits: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Request applied; `accepted` items were enqueued.
    Ok { accepted: u64 },
    /// Boolean answer (membership).
    Bool(bool),
    /// Integer answer (frequency).
    U64(u64),
    /// Floating answer (cardinality, similarity).
    F64(f64),
    /// v4: one `u64` answer per key of a batch query, in request order.
    U64s(Vec<u64>),
    /// Per-shard counters.
    Stats(Vec<ShardStats>),
    /// v2: opaque snapshot/checkpoint bytes (a she-core frame).
    Blob(Vec<u8>),
    /// v2: the protocol version the server will speak on this connection.
    Hello { version: u16 },
    /// v3: one replication record (an `OPLOG` frame) on a feed.
    ReplOp(Vec<u8>),
    /// v3: feed keep-alive carrying the primary's current log head.
    ReplHeartbeat { head: u64 },
    /// v3: answer to [`Request::ClusterStatus`].
    ClusterStatus(ClusterStatusInfo),
    /// v4: the node's current cluster map (answers
    /// [`Request::ClusterJoin`] and [`Request::ClusterMapGet`]).
    ClusterMapReply(ClusterMap),
    /// The request failed; human-readable reason.
    Err(String),
    /// Shard queue full and nothing was enqueued — retry the whole
    /// request after roughly this many milliseconds.
    Busy { retry_after_ms: u32 },
    /// v3: a write was sent to a replica; `primary` is where writes go.
    NotPrimary { primary: String },
    /// v3: the requested subscription position fell off the bounded op
    /// log; the subscriber must re-bootstrap (`floor` = oldest retained).
    LogTruncated { floor: u64 },
    /// The server is shedding load: either the connection cap was hit
    /// (sent once, then the connection is closed) or a read query was
    /// rejected because its shard queue is saturated (reads are shed
    /// before writes). Distinct from [`Response::Busy`], which is the
    /// per-request write backpressure signal.
    Overloaded { retry_after_ms: u32 },
}

/// One subscribed replica as seen by the primary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerStatus {
    /// The peer's address (as reported by `accept`).
    pub addr: String,
    /// Highest sequence number the peer has acknowledged.
    pub acked: u64,
}

/// Answer to [`Request::ClusterStatus`]: the node's role plus log and
/// replication positions. Primaries report `head`/`floor` of their op log
/// and the subscribed `peers`; replicas report `head` = highest applied
/// sequence number, `boot_seq` = where their bootstrap snapshot cut, and
/// `primary`/`connected` for the upstream link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStatusInfo {
    /// True when this node is a primary (accepts writes).
    pub is_primary: bool,
    /// Replica only: whether the upstream feed is currently connected.
    pub connected: bool,
    /// Primary: op-log head. Replica: highest applied sequence number.
    pub head: u64,
    /// Primary: oldest sequence number still in the log. Replica: 0.
    pub floor: u64,
    /// Replica: the sequence number its bootstrap snapshot reflected.
    pub boot_seq: u64,
    /// Replica: the primary's address. Empty on a primary.
    pub primary: String,
    /// Primary: currently subscribed replicas.
    pub peers: Vec<PeerStatus>,
    /// v5: pending jobs per shard worker queue at reply time — lets an
    /// operator tell overload (deep queues) from cache-miss storms
    /// (read-path misses with idle queues) in one call. Empty when
    /// talking to a pre-v5 server.
    pub queue_depths: Vec<u64>,
    /// v5: read-path cache state; disabled/zeroed without `--readpath`.
    pub readpath: ReadpathStatus,
}

/// Read-path section of [`ClusterStatusInfo`] (all zeros when the read
/// path is off or the server predates v5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadpathStatus {
    /// Whether this node serves `QUERY_FAST`.
    pub enabled: bool,
    /// Cache hits (see `she_metrics::ReadpathCounters`).
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Cache fills.
    pub fills: u64,
    /// Mark-flip invalidations.
    pub invalidations: u64,
    /// Highest op-log sequence applied to the fast summary.
    pub seq: u64,
}

/// Decoding failure for a frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Payload ended before the layout said it would.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// A declared length exceeds the frame bounds.
    Oversize,
    /// Payload has bytes beyond the declared layout.
    TrailingBytes,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::Oversize => write!(f, "declared length exceeds frame"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for ProtoError {}

// Wire decoding reuses the shared little-endian cursor from
// `she_core::frame` (one cursor implementation, both call sites).
impl From<FrameError> for ProtoError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::TrailingBytes => ProtoError::TrailingBytes,
            _ => ProtoError::Truncated,
        }
    }
}

/// Encode a length into the wire's `u32` slot. Every caller asserts its
/// bound (`MAX_BATCH`, `MAX_FRAME`-derived) before encoding, so the
/// saturating fallback is unreachable; spelled via `try_from` so the
/// encoder contains no narrowing `as` cast to audit.
fn len_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Encode a length into the wire's `u16` slot (see [`len_u32`]).
fn len_u16(n: usize) -> u16 {
    u16::try_from(n).unwrap_or(u16::MAX)
}

impl Request {
    /// Encode into a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16);
        // audit:allow(growth): frame encoder — payload capped at MAX_FRAME by the asserts above each variable-length variant
        match self {
            Request::Insert { stream, key } => {
                b.push(opcode::INSERT);
                b.push(*stream);
                b.extend_from_slice(&key.to_le_bytes());
            }
            Request::InsertBatch { stream, keys } => {
                assert!(keys.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
                b.reserve(6 + 8 * keys.len());
                b.push(opcode::INSERT_BATCH);
                b.push(*stream);
                b.extend_from_slice(&len_u32(keys.len()).to_le_bytes());
                for k in keys {
                    b.extend_from_slice(&k.to_le_bytes());
                }
            }
            Request::QueryMember { key } => {
                b.push(opcode::QUERY_MEMBER);
                b.extend_from_slice(&key.to_le_bytes());
            }
            Request::QueryCard => b.push(opcode::QUERY_CARD),
            Request::QueryFreq { key } => {
                b.push(opcode::QUERY_FREQ);
                b.extend_from_slice(&key.to_le_bytes());
            }
            Request::QuerySim => b.push(opcode::QUERY_SIM),
            Request::QueryBatch { op, keys } => {
                assert!(keys.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
                b.reserve(6 + 8 * keys.len());
                b.push(opcode::QUERY_BATCH);
                b.push(*op);
                b.extend_from_slice(&len_u32(keys.len()).to_le_bytes());
                for k in keys {
                    b.extend_from_slice(&k.to_le_bytes());
                }
            }
            Request::QueryFast { op, key } => {
                b.push(opcode::QUERY_FAST);
                b.push(*op);
                b.extend_from_slice(&key.to_le_bytes());
            }
            Request::Stats => b.push(opcode::STATS),
            Request::Hello { version } => {
                b.push(opcode::HELLO);
                b.extend_from_slice(&version.to_le_bytes());
            }
            Request::Snapshot { shard } => {
                b.push(opcode::SNAPSHOT);
                b.extend_from_slice(&shard.to_le_bytes());
            }
            Request::SnapshotAll => b.push(opcode::SNAPSHOT_ALL),
            Request::Restore { shard, data } => {
                assert!(5 + data.len() <= MAX_FRAME, "restore blob exceeds MAX_FRAME");
                b.reserve(5 + data.len());
                b.push(opcode::RESTORE);
                b.extend_from_slice(&shard.to_le_bytes());
                b.extend_from_slice(data);
            }
            Request::ReplBootstrap => b.push(opcode::REPL_BOOTSTRAP),
            Request::ReplSubscribe { from_seq, node_id } => {
                b.push(opcode::REPL_SUBSCRIBE);
                b.extend_from_slice(&from_seq.to_le_bytes());
                if *node_id != 0 {
                    b.extend_from_slice(&node_id.to_le_bytes());
                }
            }
            Request::ReplAck { seq } => {
                b.push(opcode::REPL_ACK);
                b.extend_from_slice(&seq.to_le_bytes());
            }
            Request::ClusterStatus => b.push(opcode::CLUSTER_STATUS),
            Request::ClusterJoin { from_node, map } => {
                b.push(opcode::CLUSTER_JOIN);
                b.extend_from_slice(&from_node.to_le_bytes());
                map.encode_into(&mut b);
            }
            Request::ClusterMapGet => b.push(opcode::CLUSTER_MAP),
            Request::ClusterQuery { op, key } => {
                b.push(opcode::CLUSTER_QUERY);
                b.push(*op);
                b.extend_from_slice(&key.to_le_bytes());
            }
            Request::ClusterQueryBatch { op, keys } => {
                assert!(keys.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
                b.reserve(6 + 8 * keys.len());
                b.push(opcode::CLUSTER_QUERY_BATCH);
                b.push(*op);
                b.extend_from_slice(&len_u32(keys.len()).to_le_bytes());
                for k in keys {
                    b.extend_from_slice(&k.to_le_bytes());
                }
            }
            Request::Shutdown => b.push(opcode::SHUTDOWN),
        }
        b
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut r = Reader::new(payload);
        let op = r.u8()?;
        let req = match op {
            opcode::INSERT => Request::Insert { stream: r.u8()?, key: r.u64()? },
            opcode::INSERT_BATCH => {
                let stream = r.u8()?;
                let n = usize_of(u64::from(r.u32()?));
                if n > MAX_BATCH {
                    return Err(ProtoError::Oversize);
                }
                let keys = le_u64s(r.take(8 * n)?);
                Request::InsertBatch { stream, keys }
            }
            opcode::QUERY_MEMBER => Request::QueryMember { key: r.u64()? },
            opcode::QUERY_CARD => Request::QueryCard,
            opcode::QUERY_FREQ => Request::QueryFreq { key: r.u64()? },
            opcode::QUERY_SIM => Request::QuerySim,
            opcode::QUERY_BATCH => {
                let op = r.u8()?;
                let n = usize_of(u64::from(r.u32()?));
                if n > MAX_BATCH {
                    return Err(ProtoError::Oversize);
                }
                let keys = le_u64s(r.take(8 * n)?);
                Request::QueryBatch { op, keys }
            }
            opcode::QUERY_FAST => Request::QueryFast { op: r.u8()?, key: r.u64()? },
            opcode::STATS => Request::Stats,
            opcode::HELLO => Request::Hello { version: r.u16()? },
            opcode::SNAPSHOT => Request::Snapshot { shard: r.u32()? },
            opcode::SNAPSHOT_ALL => Request::SnapshotAll,
            opcode::RESTORE => {
                let shard = r.u32()?;
                let n = r.remaining();
                let data = r.take(n)?.to_vec();
                return Ok(Request::Restore { shard, data });
            }
            opcode::REPL_BOOTSTRAP => Request::ReplBootstrap,
            opcode::REPL_SUBSCRIBE => Request::ReplSubscribe {
                from_seq: r.u64()?,
                // v6 tail; absent from v5 subscribers (anonymous).
                node_id: if r.remaining() >= 8 { r.u64()? } else { 0 },
            },
            opcode::REPL_ACK => Request::ReplAck { seq: r.u64()? },
            opcode::CLUSTER_STATUS => Request::ClusterStatus,
            opcode::CLUSTER_JOIN => {
                let from_node = r.u64()?;
                let map = ClusterMap::decode_from(&mut r)?;
                Request::ClusterJoin { from_node, map }
            }
            opcode::CLUSTER_MAP => Request::ClusterMapGet,
            opcode::CLUSTER_QUERY => Request::ClusterQuery { op: r.u8()?, key: r.u64()? },
            opcode::CLUSTER_QUERY_BATCH => {
                let op = r.u8()?;
                let n = usize_of(u64::from(r.u32()?));
                if n > MAX_BATCH {
                    return Err(ProtoError::Oversize);
                }
                let keys = le_u64s(r.take(8 * n)?);
                Request::ClusterQueryBatch { op, keys }
            }
            opcode::SHUTDOWN => Request::Shutdown,
            other => return Err(ProtoError::BadOpcode(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode into a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16);
        // audit:allow(growth): frame encoder — payload capped at MAX_FRAME by the asserts above each variable-length variant
        match self {
            Response::Ok { accepted } => {
                b.push(opcode::OK);
                b.extend_from_slice(&accepted.to_le_bytes());
            }
            Response::Bool(v) => {
                b.push(opcode::BOOL);
                b.push(u8::from(*v));
            }
            Response::U64(v) => {
                b.push(opcode::U64);
                b.extend_from_slice(&v.to_le_bytes());
            }
            Response::F64(v) => {
                b.push(opcode::F64);
                b.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            Response::U64s(values) => {
                assert!(5 + 8 * values.len() <= MAX_FRAME, "batch answer exceeds MAX_FRAME");
                b.reserve(5 + 8 * values.len());
                b.push(opcode::U64S);
                b.extend_from_slice(&len_u32(values.len()).to_le_bytes());
                for v in values {
                    b.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::Stats(shards) => {
                b.reserve(5 + 24 * shards.len());
                b.push(opcode::STATS_REPLY);
                b.extend_from_slice(&len_u32(shards.len()).to_le_bytes());
                for s in shards {
                    b.extend_from_slice(&s.inserts.to_le_bytes());
                    b.extend_from_slice(&s.queries.to_le_bytes());
                    b.extend_from_slice(&s.memory_bits.to_le_bytes());
                }
            }
            Response::Blob(data) => {
                assert!(data.len() < MAX_FRAME, "blob exceeds MAX_FRAME");
                b.reserve(1 + data.len());
                b.push(opcode::BLOB);
                b.extend_from_slice(data);
            }
            Response::Hello { version } => {
                b.push(opcode::HELLO_REPLY);
                b.extend_from_slice(&version.to_le_bytes());
            }
            Response::ReplOp(data) => {
                assert!(data.len() < MAX_FRAME, "op-log record exceeds MAX_FRAME");
                b.reserve(1 + data.len());
                b.push(opcode::REPL_OP);
                b.extend_from_slice(data);
            }
            Response::ReplHeartbeat { head } => {
                b.push(opcode::REPL_HEARTBEAT);
                b.extend_from_slice(&head.to_le_bytes());
            }
            Response::ClusterStatus(info) => {
                b.push(opcode::CLUSTER_STATUS_REPLY);
                b.push(u8::from(info.is_primary));
                b.push(u8::from(info.connected));
                b.extend_from_slice(&info.head.to_le_bytes());
                b.extend_from_slice(&info.floor.to_le_bytes());
                b.extend_from_slice(&info.boot_seq.to_le_bytes());
                assert!(info.primary.len() <= usize::from(u16::MAX), "primary addr too long");
                b.extend_from_slice(&len_u16(info.primary.len()).to_le_bytes());
                b.extend_from_slice(info.primary.as_bytes());
                b.extend_from_slice(&len_u32(info.peers.len()).to_le_bytes());
                for p in &info.peers {
                    b.extend_from_slice(&p.acked.to_le_bytes());
                    assert!(p.addr.len() <= usize::from(u16::MAX), "peer addr too long");
                    b.extend_from_slice(&len_u16(p.addr.len()).to_le_bytes());
                    b.extend_from_slice(p.addr.as_bytes());
                }
                // v5 tail: queue depths + read-path counters. Pre-v5
                // decoders stop at the peer list and never see it.
                b.extend_from_slice(&len_u32(info.queue_depths.len()).to_le_bytes());
                for d in &info.queue_depths {
                    b.extend_from_slice(&d.to_le_bytes());
                }
                let rp = &info.readpath;
                b.push(u8::from(rp.enabled));
                for v in [rp.hits, rp.misses, rp.fills, rp.invalidations, rp.seq] {
                    b.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::ClusterMapReply(map) => {
                b.push(opcode::CLUSTER_MAP_REPLY);
                map.encode_into(&mut b);
            }
            Response::Err(msg) => {
                b.push(opcode::ERR);
                b.extend_from_slice(msg.as_bytes());
            }
            Response::Busy { retry_after_ms } => {
                b.push(opcode::BUSY);
                b.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Response::NotPrimary { primary } => {
                b.push(opcode::NOT_PRIMARY);
                b.extend_from_slice(primary.as_bytes());
            }
            Response::LogTruncated { floor } => {
                b.push(opcode::LOG_TRUNCATED);
                b.extend_from_slice(&floor.to_le_bytes());
            }
            Response::Overloaded { retry_after_ms } => {
                b.push(opcode::OVERLOADED);
                b.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
        }
        b
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut r = Reader::new(payload);
        let op = r.u8()?;
        let resp = match op {
            opcode::OK => Response::Ok { accepted: r.u64()? },
            opcode::BOOL => Response::Bool(r.u8()? != 0),
            opcode::U64 => Response::U64(r.u64()?),
            opcode::F64 => Response::F64(r.f64()?),
            opcode::U64S => {
                let n = usize_of(u64::from(r.u32()?));
                if n > MAX_FRAME / 8 {
                    return Err(ProtoError::Oversize);
                }
                Response::U64s(le_u64s(r.take(8 * n)?))
            }
            opcode::STATS_REPLY => {
                let n = usize_of(u64::from(r.u32()?));
                if n > MAX_FRAME / 24 {
                    return Err(ProtoError::Oversize);
                }
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    shards.push(ShardStats {
                        inserts: r.u64()?,
                        queries: r.u64()?,
                        memory_bits: r.u64()?,
                    });
                }
                Response::Stats(shards)
            }
            opcode::BLOB => {
                let n = r.remaining();
                return Ok(Response::Blob(r.take(n)?.to_vec()));
            }
            opcode::HELLO_REPLY => Response::Hello { version: r.u16()? },
            opcode::REPL_OP => {
                let n = r.remaining();
                return Ok(Response::ReplOp(r.take(n)?.to_vec()));
            }
            opcode::REPL_HEARTBEAT => Response::ReplHeartbeat { head: r.u64()? },
            opcode::CLUSTER_STATUS_REPLY => {
                let is_primary = r.u8()? != 0;
                let connected = r.u8()? != 0;
                let head = r.u64()?;
                let floor = r.u64()?;
                let boot_seq = r.u64()?;
                let plen = usize::from(r.u16()?);
                let primary = String::from_utf8_lossy(r.take(plen)?).into_owned();
                let n = usize_of(u64::from(r.u32()?));
                if n > MAX_FRAME / 10 {
                    return Err(ProtoError::Oversize);
                }
                let mut peers = Vec::with_capacity(n);
                for _ in 0..n {
                    let acked = r.u64()?;
                    let alen = usize::from(r.u16()?);
                    let addr = String::from_utf8_lossy(r.take(alen)?).into_owned();
                    peers.push(PeerStatus { addr, acked });
                }
                // v5 tail (absent from pre-v5 servers: default to zeros).
                let mut queue_depths = Vec::new();
                let mut readpath = ReadpathStatus::default();
                if r.remaining() > 0 {
                    let d = usize_of(u64::from(r.u32()?));
                    if d > MAX_FRAME / 8 {
                        return Err(ProtoError::Oversize);
                    }
                    queue_depths = le_u64s(r.take(8 * d)?);
                    readpath = ReadpathStatus {
                        enabled: r.u8()? != 0,
                        hits: r.u64()?,
                        misses: r.u64()?,
                        fills: r.u64()?,
                        invalidations: r.u64()?,
                        seq: r.u64()?,
                    };
                }
                Response::ClusterStatus(ClusterStatusInfo {
                    is_primary,
                    connected,
                    head,
                    floor,
                    boot_seq,
                    primary,
                    peers,
                    queue_depths,
                    readpath,
                })
            }
            opcode::CLUSTER_MAP_REPLY => {
                Response::ClusterMapReply(ClusterMap::decode_from(&mut r)?)
            }
            opcode::ERR => {
                let rest = r.take(payload.len() - 1)?;
                return Ok(Response::Err(String::from_utf8_lossy(rest).into_owned()));
            }
            opcode::BUSY => Response::Busy { retry_after_ms: r.u32()? },
            opcode::NOT_PRIMARY => {
                let rest = r.take(payload.len() - 1)?;
                return Ok(Response::NotPrimary {
                    primary: String::from_utf8_lossy(rest).into_owned(),
                });
            }
            opcode::LOG_TRUNCATED => Response::LogTruncated { floor: r.u64()? },
            opcode::OVERLOADED => Response::Overloaded { retry_after_ms: r.u32()? },
            other => return Err(ProtoError::BadOpcode(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}
