//! Cluster membership and partition routing (protocol v4).
//!
//! A cluster is a set of nodes, each serving one single-shard *partition*
//! engine. Keys route to partitions with the same monotone
//! `reduce_range(mix64(key ^ ROUTER_SEED), P)` the sharded engine uses,
//! and every partition is sized `window/P`, `memory/P` — exactly how
//! [`crate::engine::ShardEngine`] sizes shard `p` of a `P`-shard engine.
//! A `P`-partition cluster therefore answers every query bit-for-bit like
//! one `P`-shard single-process engine of the same global sizing: member
//! and freq route to the owning partition, cardinality *sums* partition
//! estimates in partition order, similarity *averages* them (see
//! `docs/CLUSTER.md`).
//!
//! The membership table is a [`ClusterMap`]: an epoch plus, per
//! partition, the *ordered holder list* — the primary followed by its
//! replica set — and the cluster's replication factor `rf` (total
//! holders per partition, primary included). Maps spread by push-pull
//! gossip (`CLUSTER_JOIN` carries the sender's view, the reply carries
//! the receiver's) and every node adopts whichever view is *newer* under
//! a total order — `(epoch, encoded bytes)` lexicographically — so
//! concurrent promotions converge without coordination. Failover is the
//! deterministic [`ClusterMap::elect`] rule: for each partition whose
//! primary left the live set, the lowest-id live replica holder wins,
//! and live non-holders are drafted in to *top up* the replica set back
//! toward `rf` holders — which is what lets an RF=2 partition survive a
//! second failure of the freshly promoted node.

use crate::engine::ROUTER_SEED;
use crate::protocol::{ProtoError, Response};
use she_core::convert::usize_of;
use she_core::frame::Reader;
use she_core::OrderedMutex;
use she_hash::{mix64, reduce_range};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Sanity cap on partitions in a decoded map (a map is a few hundred
/// bytes per partition; this bounds hostile counts, not real clusters).
const MAX_PARTITIONS: usize = 1 << 16;

/// Sanity cap on replicas per partition in a decoded map.
const MAX_REPLICAS: usize = 1 << 10;

/// Longest address string a map entry may carry.
const MAX_ADDR: usize = 256;

/// The merge operations `CLUSTER_QUERY` can scatter (the wire `op` byte).
pub mod cluster_op {
    /// Membership: routed to the key's owning partition.
    pub const MEMBER: u8 = 0;
    /// Cardinality: per-partition estimates summed in partition order.
    pub const CARD: u8 = 1;
    /// Frequency: routed to the key's owning partition.
    pub const FREQ: u8 = 2;
    /// Similarity: per-partition Jaccard estimates averaged.
    pub const SIM: u8 = 3;
}

/// One node as named in a cluster map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRef {
    /// Operator-assigned, cluster-unique id; ties in the election break
    /// toward the lowest id.
    pub node_id: u64,
    /// Where the node's serving endpoint for this role listens.
    pub addr: String,
}

/// One partition's placement: who accepts its writes, who replicates it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    /// The node serving this partition's writes (and scatter reads).
    pub primary: NodeRef,
    /// Nodes tailing this partition's op log, promotion candidates.
    pub replicas: Vec<NodeRef>,
}

/// The cluster membership table: an epoch plus per-partition placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMap {
    /// Monotone map version; bumped by every election.
    pub epoch: u64,
    /// Replication factor: desired holders per partition, primary
    /// included (so `rf = 2` means primary + one replica — the pre-v6
    /// default). Elections top replica sets back up toward this.
    pub rf: u16,
    /// Placement, indexed by partition.
    pub partitions: Vec<PartitionMap>,
}

impl ClusterMap {
    /// The partition a key routes to. Matches
    /// [`crate::engine::EngineConfig::shard_of`] with `shards` =
    /// partition count, which is what makes cluster answers coincide with
    /// a single sharded engine's.
    #[inline]
    pub fn partition_of(&self, key: u64) -> usize {
        reduce_range(mix64(key ^ ROUTER_SEED), self.partitions.len())
    }

    /// [`ClusterMap::initial_rf`] at the default replication factor 2
    /// (primary + one replica — the pre-v6 placement).
    pub fn initial(roster: &[NodeRef]) -> ClusterMap {
        ClusterMap::initial_rf(roster, 2)
    }

    /// The deterministic initial map for a fresh roster at replication
    /// factor `rf` (total holders per partition, primary included):
    /// partition `p` is primary on `roster[p]`, replicated on the next
    /// `rf - 1` *distinct* ring successors `roster[p+1 .. p+rf mod n]`.
    /// `rf` is clamped to the roster size. Every node computes the same
    /// epoch-1 map from the same `--peers` list, so a cluster boots
    /// without a coordinator. Requires one partition per roster node.
    pub fn initial_rf(roster: &[NodeRef], rf: u16) -> ClusterMap {
        let n = roster.len();
        let rf = usize::from(rf.max(1)).min(n);
        let partitions = (0..n)
            .map(|p| PartitionMap {
                primary: roster[p].clone(),
                replicas: (1..rf).map(|i| roster[(p + i) % n].clone()).collect(),
            })
            .collect();
        ClusterMap { epoch: 1, rf: u16::try_from(rf).unwrap_or(u16::MAX), partitions }
    }

    /// Every node the map knows about (any holder of any partition),
    /// keyed by id — the candidate pool for replica top-up.
    fn known_nodes(&self) -> BTreeMap<u64, &NodeRef> {
        let mut known = BTreeMap::new();
        for p in &self.partitions {
            known.entry(p.primary.node_id).or_insert(&p.primary);
            for r in &p.replicas {
                known.entry(r.node_id).or_insert(r);
            }
        }
        known
    }

    /// The deterministic failover rule over the full holder set.
    ///
    /// * A partition whose primary is not in `alive` is won by its
    ///   *lowest-id live replica holder*, which leaves the replica set;
    ///   dead replicas are pruned with it. Partitions with no live
    ///   replica at all are untouched (nothing can serve them).
    /// * Any partition whose surviving replica set fell below `rf - 1`
    ///   is *topped up* with live non-holder nodes, lowest id first, so
    ///   the partition regains its replication factor while candidates
    ///   exist — the repair that lets a second failure land safely.
    /// * A partition with a live primary loses its dead replicas the
    ///   same way (prune + top-up), keeping the map's holder lists an
    ///   honest picture of who can actually be promoted.
    ///
    /// Returns the epoch+1 successor map, or `None` when nothing
    /// changed. The rule is a pure function of `(map, alive)`, so any
    /// two nodes that agree on those inputs elect identically — the
    /// convergence property the seeded tests exercise. A winner's `addr`
    /// in the returned map is still the *replica-role* placeholder; only
    /// the node owning a changed partition installs the map, after
    /// rewriting a promoted entry with the promoted server's real
    /// address.
    pub fn elect(&self, alive: &BTreeSet<u64>) -> Option<ClusterMap> {
        let known = self.known_nodes();
        let mut changed = false;
        let partitions = self
            .partitions
            .iter()
            .map(|p| {
                let primary = if alive.contains(&p.primary.node_id) {
                    p.primary.clone()
                } else {
                    let Some(winner) = p
                        .replicas
                        .iter()
                        .filter(|r| alive.contains(&r.node_id))
                        .min_by_key(|r| r.node_id)
                    else {
                        return p.clone(); // nothing live can serve it
                    };
                    winner.clone()
                };
                let mut replicas: Vec<NodeRef> = p
                    .replicas
                    .iter()
                    .filter(|r| r.node_id != primary.node_id && alive.contains(&r.node_id))
                    .cloned()
                    .collect();
                // Top up toward rf holders with live non-holders.
                let target = usize::from(self.rf).saturating_sub(1);
                for (&id, &node) in &known {
                    if replicas.len() >= target {
                        break;
                    }
                    if id == primary.node_id
                        || !alive.contains(&id)
                        || replicas.iter().any(|r| r.node_id == id)
                    {
                        continue;
                    }
                    // audit:allow(growth): bounded by rf, itself bounded by the roster
                    replicas.push(node.clone());
                }
                let next = PartitionMap { primary, replicas };
                changed |= next != *p;
                next
            })
            .collect();
        changed.then_some(ClusterMap { epoch: self.epoch + 1, rf: self.rf, partitions })
    }

    /// Total order over maps: higher epoch wins, ties break on the
    /// encoded bytes. Any set of nodes adopting the greater of two maps
    /// pairwise converges to the one global maximum.
    pub fn supersedes(&self, other: &ClusterMap) -> bool {
        (self.epoch, self.encode()) > (other.epoch, other.encode())
    }

    /// Wire encoding (shared by `CLUSTER_JOIN` and `CLUSTER_MAP_REPLY`):
    /// `epoch u64 | n_partitions u32 | n × (primary ref | n_replicas u16 |
    /// replica refs) | rf u16`, each ref `node_id u64 | addr_len u16 |
    /// addr`. The `rf` field is the protocol-v6 tail: a v5 peer never
    /// reads past the partition list, and [`ClusterMap::decode_from`]
    /// treats it as optional, so v5 and v6 maps interchange freely.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16 + 64 * self.partitions.len());
        self.encode_into(&mut b);
        b
    }

    /// Append the wire encoding to `b` (see [`ClusterMap::encode`]).
    pub fn encode_into(&self, b: &mut Vec<u8>) {
        fn node_ref(b: &mut Vec<u8>, r: &NodeRef) {
            b.extend_from_slice(&r.node_id.to_le_bytes());
            assert!(r.addr.len() <= MAX_ADDR, "cluster addr too long");
            b.extend_from_slice(&u16::try_from(r.addr.len()).unwrap_or(u16::MAX).to_le_bytes());
            b.extend_from_slice(r.addr.as_bytes());
        }
        assert!(self.partitions.len() <= MAX_PARTITIONS, "too many partitions");
        b.extend_from_slice(&self.epoch.to_le_bytes());
        b.extend_from_slice(
            &u32::try_from(self.partitions.len()).unwrap_or(u32::MAX).to_le_bytes(),
        );
        for p in &self.partitions {
            node_ref(b, &p.primary);
            assert!(p.replicas.len() <= MAX_REPLICAS, "too many replicas");
            b.extend_from_slice(&u16::try_from(p.replicas.len()).unwrap_or(u16::MAX).to_le_bytes());
            for r in &p.replicas {
                node_ref(b, r);
            }
        }
        b.extend_from_slice(&self.rf.to_le_bytes());
    }

    /// Decode a map from the reader's current position.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<ClusterMap, ProtoError> {
        fn node_ref(r: &mut Reader<'_>) -> Result<NodeRef, ProtoError> {
            let node_id = r.u64()?;
            let len = usize::from(r.u16()?);
            if len > MAX_ADDR {
                return Err(ProtoError::Oversize);
            }
            let addr = String::from_utf8_lossy(r.take(len)?).into_owned();
            Ok(NodeRef { node_id, addr })
        }
        let epoch = r.u64()?;
        let n = usize_of(u64::from(r.u32()?));
        if n > MAX_PARTITIONS {
            return Err(ProtoError::Oversize);
        }
        let mut partitions = Vec::with_capacity(n);
        for _ in 0..n {
            let primary = node_ref(r)?;
            let n_replicas = usize::from(r.u16()?);
            if n_replicas > MAX_REPLICAS {
                return Err(ProtoError::Oversize);
            }
            let mut replicas = Vec::with_capacity(n_replicas);
            for _ in 0..n_replicas {
                replicas.push(node_ref(r)?);
            }
            partitions.push(PartitionMap { primary, replicas });
        }
        // v6 tail: v5 encoders stop at the partition list, so infer the
        // factor their placement implies (widest holder list).
        let rf = if r.remaining() >= 2 {
            r.u16()?
        } else {
            let widest = partitions.iter().map(|p| p.replicas.len() + 1).max().unwrap_or(1);
            u16::try_from(widest).unwrap_or(u16::MAX)
        };
        Ok(ClusterMap { epoch, rf, partitions })
    }
}

/// The shared, adopt-if-newer view of the cluster map. One directory is
/// shared by every server running on a node (the partition primary and
/// any promoted replicas), so a map installed by the failover monitor is
/// immediately what `CLUSTER_MAP` and `CLUSTER_QUERY` serve.
#[derive(Debug)]
pub struct ClusterDirectory {
    map: OrderedMutex<ClusterMap>,
}

impl ClusterDirectory {
    /// Start from `initial` (normally [`ClusterMap::initial`]).
    pub fn new(initial: ClusterMap) -> Self {
        ClusterDirectory { map: OrderedMutex::new("cluster-map", initial) }
    }

    /// A snapshot of the current view.
    pub fn get(&self) -> ClusterMap {
        self.map.lock().clone()
    }

    /// The current epoch (cheaper than cloning the whole map).
    pub fn epoch(&self) -> u64 {
        self.map.lock().epoch
    }

    /// Adopt `candidate` iff it supersedes the current view (see
    /// [`ClusterMap::supersedes`]). Returns whether it was adopted.
    pub fn observe(&self, candidate: &ClusterMap) -> bool {
        let mut cur = self.map.lock();
        if candidate.supersedes(&cur) {
            *cur = candidate.clone();
            true
        } else {
            false
        }
    }
}

/// Scatter one `CLUSTER_QUERY` across `map` and merge the partial
/// answers: member/freq go to the key's owning partition, cardinality
/// sums every partition's estimate in partition order, similarity
/// averages them — the exact merge a `P`-shard
/// [`crate::engine::DirectEngine`] applies to its own shards, which is
/// what makes the scatter-gather answer bit-for-bit mirrorable.
///
/// Partitions are visited serially so the f64 merge order is fixed. Any
/// unreachable partition fails the whole query (a partial merge would be
/// silently wrong).
pub fn scatter_query(map: &ClusterMap, op: u8, key: u64, op_timeout: Duration) -> Response {
    if map.partitions.is_empty() {
        return Response::Err("cluster map has no partitions".to_string());
    }
    let leg = |part: usize| -> Result<crate::client::Client, String> {
        let addr = &map.partitions[part].primary.addr;
        crate::client::Client::connect_timeout(addr, op_timeout)
            .map_err(|e| format!("partition {part} at {addr}: {e}"))
    };
    match op {
        cluster_op::MEMBER => {
            let part = map.partition_of(key);
            match leg(part)
                .and_then(|mut c| c.query_member(key).map_err(|e| format!("partition {part}: {e}")))
            {
                Ok(v) => Response::Bool(v),
                Err(e) => Response::Err(e),
            }
        }
        cluster_op::FREQ => {
            let part = map.partition_of(key);
            match leg(part)
                .and_then(|mut c| c.query_freq(key).map_err(|e| format!("partition {part}: {e}")))
            {
                Ok(v) => Response::U64(v),
                Err(e) => Response::Err(e),
            }
        }
        cluster_op::CARD | cluster_op::SIM => {
            let mut sum = 0.0f64;
            for part in 0..map.partitions.len() {
                let est = leg(part).and_then(|mut c| {
                    let r = if op == cluster_op::CARD { c.query_card() } else { c.query_sim() };
                    r.map_err(|e| format!("partition {part}: {e}"))
                });
                match est {
                    Ok(v) => sum += v,
                    Err(e) => return Response::Err(e),
                }
            }
            if op == cluster_op::SIM {
                sum /= map.partitions.len() as f64;
            }
            Response::F64(sum)
        }
        other => Response::Err(format!("unknown cluster query op {other}")),
    }
}

/// Scatter one `CLUSTER_QUERY_BATCH` across `map`: keys are grouped by
/// owning partition, each involved partition gets **one** `QUERY_BATCH`
/// leg (N keys per scatter round-trip instead of N round-trips), and the
/// per-key answers are reassembled into request order. Only the per-key
/// ops are batchable; the whole-stream merges (card, sim) have no per-key
/// answer to reorder. Like [`scatter_query`], any unreachable partition
/// fails the whole query.
pub fn scatter_query_batch(
    map: &ClusterMap,
    op: u8,
    keys: &[u64],
    op_timeout: Duration,
) -> Response {
    if op != cluster_op::MEMBER && op != cluster_op::FREQ {
        return Response::Err(format!(
            "cluster batch query op {op} must be member ({}) or freq ({})",
            cluster_op::MEMBER,
            cluster_op::FREQ
        ));
    }
    if map.partitions.is_empty() {
        return Response::Err("cluster map has no partitions".to_string());
    }
    if keys.is_empty() {
        return Response::U64s(Vec::new());
    }
    // Group keys by partition, remembering each key's request position.
    let mut per: Vec<(Vec<u64>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); map.partitions.len()];
    for (i, &key) in keys.iter().enumerate() {
        let part = map.partition_of(key);
        // audit:allow(growth): per-partition split of one batch, total bounded by MAX_BATCH at decode
        per[part].0.push(key);
        // audit:allow(growth): position index of the same bounded batch
        per[part].1.push(i);
    }
    let mut out = vec![0u64; keys.len()];
    for (part, (part_keys, positions)) in per.into_iter().enumerate() {
        if part_keys.is_empty() {
            continue;
        }
        let addr = &map.partitions[part].primary.addr;
        let leg = crate::client::Client::connect_timeout(addr, op_timeout)
            .map_err(|e| format!("partition {part} at {addr}: {e}"))
            .and_then(|mut c| {
                c.query_batch(op, &part_keys).map_err(|e| format!("partition {part}: {e}"))
            });
        let values = match leg {
            Ok(v) => v,
            Err(e) => return Response::Err(e),
        };
        if values.len() != positions.len() {
            return Response::Err(format!(
                "partition {part}: batch answered {} values for {} keys",
                values.len(),
                positions.len()
            ));
        }
        for (pos, value) in positions.into_iter().zip(values) {
            out[pos] = value;
        }
    }
    Response::U64s(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn node(id: u64) -> NodeRef {
        NodeRef { node_id: id, addr: format!("127.0.0.1:{}", 7000 + id) }
    }

    fn roster(n: u64) -> Vec<NodeRef> {
        (1..=n).map(node).collect()
    }

    fn alive(ids: &[u64]) -> BTreeSet<u64> {
        ids.iter().copied().collect()
    }

    #[test]
    fn codec_round_trip() {
        for rf in [1, 2, 3, 5] {
            let map = ClusterMap::initial_rf(&roster(4), rf);
            let bytes = map.encode();
            let mut r = Reader::new(&bytes);
            let back = ClusterMap::decode_from(&mut r).expect("decode");
            assert!(r.finish().is_ok());
            assert_eq!(back, map, "rf {rf}");
        }
    }

    /// A v5 peer encodes no `rf` tail; decoding its bytes must still
    /// succeed and infer the factor its placement implies.
    #[test]
    fn decode_accepts_v5_bytes_without_rf_tail() {
        let map = ClusterMap::initial_rf(&roster(3), 3);
        let mut bytes = map.encode();
        bytes.truncate(bytes.len() - 2); // what a v5 encoder would emit
        let mut r = Reader::new(&bytes);
        let back = ClusterMap::decode_from(&mut r).expect("v5 decode");
        assert!(r.finish().is_ok());
        assert_eq!(back.rf, 3, "inferred from the widest holder list");
        assert_eq!(back.partitions, map.partitions);

        // A single-node v5 map (no replicas anywhere) infers rf = 1.
        let solo = ClusterMap::initial(&roster(1));
        let mut bytes = solo.encode();
        bytes.truncate(bytes.len() - 2);
        let back = ClusterMap::decode_from(&mut Reader::new(&bytes)).expect("v5 decode");
        assert_eq!(back.rf, 1);
    }

    #[test]
    fn partition_of_matches_shard_of() {
        let map = ClusterMap::initial(&roster(5));
        let cfg = EngineConfig { shards: 5, ..Default::default() };
        for k in 0..10_000u64 {
            assert_eq!(map.partition_of(k), cfg.shard_of(k), "key {k}");
        }
    }

    #[test]
    fn initial_map_is_a_rotated_ring() {
        let map = ClusterMap::initial(&roster(3));
        assert_eq!(map.epoch, 1);
        assert_eq!(map.rf, 2);
        for (p, pm) in map.partitions.iter().enumerate() {
            assert_eq!(pm.primary.node_id, p as u64 + 1);
            assert_eq!(pm.replicas.len(), 1);
            assert_eq!(pm.replicas[0].node_id, (p as u64 + 1) % 3 + 1);
        }
        assert!(ClusterMap::initial(&roster(1)).partitions[0].replicas.is_empty());
    }

    /// RF > 2 places each partition on the next rf−1 *distinct* ring
    /// successors; rf clamps to the roster size.
    #[test]
    fn initial_rf_places_distinct_ring_successors() {
        let map = ClusterMap::initial_rf(&roster(4), 3);
        assert_eq!(map.rf, 3);
        for (p, pm) in map.partitions.iter().enumerate() {
            let ids: Vec<u64> = pm.replicas.iter().map(|r| r.node_id).collect();
            assert_eq!(ids, vec![(p as u64 + 1) % 4 + 1, (p as u64 + 2) % 4 + 1], "partition {p}");
        }
        // rf beyond the roster clamps: 3 nodes can hold at most 3 copies.
        let clamped = ClusterMap::initial_rf(&roster(3), 9);
        assert_eq!(clamped.rf, 3);
        for pm in &clamped.partitions {
            let mut ids: Vec<u64> = pm.replicas.iter().map(|r| r.node_id).collect();
            ids.push(pm.primary.node_id);
            ids.sort_unstable();
            assert_eq!(ids, vec![1, 2, 3], "all distinct holders");
        }
    }

    #[test]
    fn elect_promotes_lowest_id_live_replica() {
        let mut map = ClusterMap::initial(&roster(3));
        map.partitions[0].replicas.push(node(3)); // partition 0: primary 1, replicas {2, 3}
        let next = map.elect(&alive(&[2, 3])).expect("changed");
        assert_eq!(next.epoch, 2);
        assert_eq!(next.partitions[0].primary.node_id, 2);
        assert_eq!(
            next.partitions[0].replicas.iter().map(|r| r.node_id).collect::<Vec<_>>(),
            vec![3]
        );
        // Partition 1 (primary 2, replica 3) is fully live: untouched.
        assert_eq!(next.partitions[1].primary.node_id, 2);
        assert_eq!(next.partitions[1].replicas.iter().map(|r| r.node_id).collect::<Vec<_>>(), [3]);
        // Partition 2 keeps its live primary 3 but its replica (node 1)
        // died: the dead holder is pruned and live node 2 drafted in.
        assert_eq!(next.partitions[2].primary.node_id, 3);
        assert_eq!(next.partitions[2].replicas.iter().map(|r| r.node_id).collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn elect_is_a_noop_when_all_primaries_live_or_no_replica_survives() {
        let map = ClusterMap::initial(&roster(3));
        assert!(map.elect(&alive(&[1, 2, 3])).is_none());
        // Node 1 and its replica holder (node 2 backs partition 0? no —
        // partition 0 is replicated on node 2) both dead: partition 0 has
        // no live replica, partitions 1/2 elect nothing either way.
        let next = map.elect(&alive(&[3])).expect("partition 1 fails over to 3");
        assert_eq!(next.partitions[0].primary.node_id, 1, "no live replica: unchanged");
        assert_eq!(next.partitions[1].primary.node_id, 3);
    }

    /// The RF=2 double-kill story: after the first failover the promoted
    /// partition is topped back up with a live non-holder, so a second
    /// kill of the freshly promoted node still leaves a live holder.
    #[test]
    fn elect_tops_up_promoted_partitions_toward_rf() {
        let map = ClusterMap::initial(&roster(3)); // rf 2
        let first = map.elect(&alive(&[2, 3])).expect("node 1 dies");
        // Partition 0: replica 2 promoted, node 3 (the only live
        // non-holder) drafted as its new replica.
        assert_eq!(first.partitions[0].primary.node_id, 2);
        assert_eq!(first.partitions[0].replicas.iter().map(|r| r.node_id).collect::<Vec<_>>(), [3]);
        // Partition 2 (primary 3) lost replica 1: topped up with node 2.
        assert_eq!(first.partitions[2].primary.node_id, 3);
        assert_eq!(first.partitions[2].replicas.iter().map(|r| r.node_id).collect::<Vec<_>>(), [2]);

        // Kill the promoted node too: node 3 now holds everything.
        let second = first.elect(&alive(&[3])).expect("node 2 dies");
        for (p, pm) in second.partitions.iter().enumerate() {
            assert_eq!(pm.primary.node_id, 3, "partition {p}");
            assert!(pm.replicas.is_empty(), "no live candidates remain");
        }
    }

    /// At RF=3 losing one holder keeps two; top-up only fires while live
    /// non-holders exist, and never drafts a dead node.
    #[test]
    fn elect_at_rf3_prunes_and_tops_up_from_live_nodes_only() {
        let map = ClusterMap::initial_rf(&roster(4), 3);
        // Partition 0: primary 1, replicas {2, 3}. Kill node 2.
        let next = map.elect(&alive(&[1, 3, 4])).expect("changed");
        assert_eq!(next.rf, 3);
        assert_eq!(next.partitions[0].primary.node_id, 1);
        // Dead replica 2 pruned, live non-holder 4 drafted.
        assert_eq!(
            next.partitions[0].replicas.iter().map(|r| r.node_id).collect::<Vec<_>>(),
            [3, 4]
        );
        // Partition 1 (primary 2, replicas {3, 4}): lowest-id live
        // replica 3 wins, 4 stays, 1 drafted to reach rf.
        assert_eq!(next.partitions[1].primary.node_id, 3);
        assert_eq!(
            next.partitions[1].replicas.iter().map(|r| r.node_id).collect::<Vec<_>>(),
            [4, 1]
        );
    }

    #[test]
    fn supersedes_is_a_total_order() {
        let a = ClusterMap::initial(&roster(3));
        let b = a.elect(&alive(&[2, 3])).expect("changed");
        assert!(b.supersedes(&a));
        assert!(!a.supersedes(&b));
        assert!(!a.supersedes(&a.clone()));
        // Same epoch, different content: exactly one side wins.
        let mut c = a.clone();
        c.partitions[0].primary.addr = "127.0.0.1:9999".to_string();
        assert_ne!(a.supersedes(&c), c.supersedes(&a));
    }

    #[test]
    fn directory_adopts_only_newer() {
        let a = ClusterMap::initial(&roster(3));
        let b = a.elect(&alive(&[2, 3])).expect("changed");
        let dir = ClusterDirectory::new(a.clone());
        assert!(!dir.observe(&a), "same map is not newer");
        assert!(dir.observe(&b));
        assert_eq!(dir.epoch(), 2);
        assert!(!dir.observe(&a), "older map is rejected");
        assert_eq!(dir.get(), b);
    }
}
