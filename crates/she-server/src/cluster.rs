//! Cluster membership and partition routing (protocol v4).
//!
//! A cluster is a set of nodes, each serving one single-shard *partition*
//! engine. Keys route to partitions with the same monotone
//! `reduce_range(mix64(key ^ ROUTER_SEED), P)` the sharded engine uses,
//! and every partition is sized `window/P`, `memory/P` — exactly how
//! [`crate::engine::ShardEngine`] sizes shard `p` of a `P`-shard engine.
//! A `P`-partition cluster therefore answers every query bit-for-bit like
//! one `P`-shard single-process engine of the same global sizing: member
//! and freq route to the owning partition, cardinality *sums* partition
//! estimates in partition order, similarity *averages* them (see
//! `docs/CLUSTER.md`).
//!
//! The membership table is a [`ClusterMap`]: an epoch plus, per
//! partition, the primary and its replica set. Maps spread by push-pull
//! gossip (`CLUSTER_JOIN` carries the sender's view, the reply carries
//! the receiver's) and every node adopts whichever view is *newer* under
//! a total order — `(epoch, encoded bytes)` lexicographically — so
//! concurrent promotions converge without coordination. Failover is the
//! deterministic [`ClusterMap::elect`] rule: for each partition whose
//! primary left the live set, the lowest-id live replica holder wins.

use crate::engine::ROUTER_SEED;
use crate::protocol::{ProtoError, Response};
use she_core::convert::usize_of;
use she_core::frame::Reader;
use she_core::OrderedMutex;
use she_hash::{mix64, reduce_range};
use std::collections::BTreeSet;
use std::time::Duration;

/// Sanity cap on partitions in a decoded map (a map is a few hundred
/// bytes per partition; this bounds hostile counts, not real clusters).
const MAX_PARTITIONS: usize = 1 << 16;

/// Sanity cap on replicas per partition in a decoded map.
const MAX_REPLICAS: usize = 1 << 10;

/// Longest address string a map entry may carry.
const MAX_ADDR: usize = 256;

/// The merge operations `CLUSTER_QUERY` can scatter (the wire `op` byte).
pub mod cluster_op {
    /// Membership: routed to the key's owning partition.
    pub const MEMBER: u8 = 0;
    /// Cardinality: per-partition estimates summed in partition order.
    pub const CARD: u8 = 1;
    /// Frequency: routed to the key's owning partition.
    pub const FREQ: u8 = 2;
    /// Similarity: per-partition Jaccard estimates averaged.
    pub const SIM: u8 = 3;
}

/// One node as named in a cluster map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRef {
    /// Operator-assigned, cluster-unique id; ties in the election break
    /// toward the lowest id.
    pub node_id: u64,
    /// Where the node's serving endpoint for this role listens.
    pub addr: String,
}

/// One partition's placement: who accepts its writes, who replicates it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    /// The node serving this partition's writes (and scatter reads).
    pub primary: NodeRef,
    /// Nodes tailing this partition's op log, promotion candidates.
    pub replicas: Vec<NodeRef>,
}

/// The cluster membership table: an epoch plus per-partition placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMap {
    /// Monotone map version; bumped by every election.
    pub epoch: u64,
    /// Placement, indexed by partition.
    pub partitions: Vec<PartitionMap>,
}

impl ClusterMap {
    /// The partition a key routes to. Matches
    /// [`crate::engine::EngineConfig::shard_of`] with `shards` =
    /// partition count, which is what makes cluster answers coincide with
    /// a single sharded engine's.
    #[inline]
    pub fn partition_of(&self, key: u64) -> usize {
        reduce_range(mix64(key ^ ROUTER_SEED), self.partitions.len())
    }

    /// The deterministic initial map for a fresh roster: partition `p` is
    /// primary on `roster[p]`, replicated on `roster[p+1 mod n]` (no
    /// replicas in a single-node roster). Every node computes the same
    /// epoch-1 map from the same `--peers` list, so a cluster boots
    /// without a coordinator. Requires one partition per roster node.
    pub fn initial(roster: &[NodeRef]) -> ClusterMap {
        let n = roster.len();
        let partitions = (0..n)
            .map(|p| PartitionMap {
                primary: roster[p].clone(),
                replicas: if n > 1 { vec![roster[(p + 1) % n].clone()] } else { Vec::new() },
            })
            .collect();
        ClusterMap { epoch: 1, partitions }
    }

    /// The deterministic failover rule. For every partition whose primary
    /// is not in `alive`, the *lowest-id live replica holder* becomes the
    /// new primary and leaves the replica set (dead replicas are pruned
    /// with it); partitions with a live primary, and partitions with no
    /// live replica at all, are untouched. Returns the epoch+1 successor
    /// map, or `None` when nothing changed.
    ///
    /// The rule is a pure function of `(map, alive)`, so any two nodes
    /// that agree on those inputs elect identically — the convergence
    /// property the seeded test below exercises. The winner's `addr` in
    /// the returned map is still the *replica-role* placeholder; only the
    /// winning node installs the map, after rewriting its own entry with
    /// the promoted server's real address.
    pub fn elect(&self, alive: &BTreeSet<u64>) -> Option<ClusterMap> {
        let mut changed = false;
        let partitions = self
            .partitions
            .iter()
            .map(|p| {
                if alive.contains(&p.primary.node_id) {
                    return p.clone();
                }
                let Some(winner) = p
                    .replicas
                    .iter()
                    .filter(|r| alive.contains(&r.node_id))
                    .min_by_key(|r| r.node_id)
                else {
                    return p.clone();
                };
                changed = true;
                PartitionMap {
                    primary: winner.clone(),
                    replicas: p
                        .replicas
                        .iter()
                        .filter(|r| r.node_id != winner.node_id && alive.contains(&r.node_id))
                        .cloned()
                        .collect(),
                }
            })
            .collect();
        changed.then_some(ClusterMap { epoch: self.epoch + 1, partitions })
    }

    /// Total order over maps: higher epoch wins, ties break on the
    /// encoded bytes. Any set of nodes adopting the greater of two maps
    /// pairwise converges to the one global maximum.
    pub fn supersedes(&self, other: &ClusterMap) -> bool {
        (self.epoch, self.encode()) > (other.epoch, other.encode())
    }

    /// Wire encoding (shared by `CLUSTER_JOIN` and `CLUSTER_MAP_REPLY`):
    /// `epoch u64 | n_partitions u32 | n × (primary ref | n_replicas u16 |
    /// replica refs)`, each ref `node_id u64 | addr_len u16 | addr`.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16 + 64 * self.partitions.len());
        self.encode_into(&mut b);
        b
    }

    /// Append the wire encoding to `b` (see [`ClusterMap::encode`]).
    pub fn encode_into(&self, b: &mut Vec<u8>) {
        fn node_ref(b: &mut Vec<u8>, r: &NodeRef) {
            b.extend_from_slice(&r.node_id.to_le_bytes());
            assert!(r.addr.len() <= MAX_ADDR, "cluster addr too long");
            b.extend_from_slice(&u16::try_from(r.addr.len()).unwrap_or(u16::MAX).to_le_bytes());
            b.extend_from_slice(r.addr.as_bytes());
        }
        assert!(self.partitions.len() <= MAX_PARTITIONS, "too many partitions");
        b.extend_from_slice(&self.epoch.to_le_bytes());
        b.extend_from_slice(
            &u32::try_from(self.partitions.len()).unwrap_or(u32::MAX).to_le_bytes(),
        );
        for p in &self.partitions {
            node_ref(b, &p.primary);
            assert!(p.replicas.len() <= MAX_REPLICAS, "too many replicas");
            b.extend_from_slice(&u16::try_from(p.replicas.len()).unwrap_or(u16::MAX).to_le_bytes());
            for r in &p.replicas {
                node_ref(b, r);
            }
        }
    }

    /// Decode a map from the reader's current position.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<ClusterMap, ProtoError> {
        fn node_ref(r: &mut Reader<'_>) -> Result<NodeRef, ProtoError> {
            let node_id = r.u64()?;
            let len = usize::from(r.u16()?);
            if len > MAX_ADDR {
                return Err(ProtoError::Oversize);
            }
            let addr = String::from_utf8_lossy(r.take(len)?).into_owned();
            Ok(NodeRef { node_id, addr })
        }
        let epoch = r.u64()?;
        let n = usize_of(u64::from(r.u32()?));
        if n > MAX_PARTITIONS {
            return Err(ProtoError::Oversize);
        }
        let mut partitions = Vec::with_capacity(n);
        for _ in 0..n {
            let primary = node_ref(r)?;
            let n_replicas = usize::from(r.u16()?);
            if n_replicas > MAX_REPLICAS {
                return Err(ProtoError::Oversize);
            }
            let mut replicas = Vec::with_capacity(n_replicas);
            for _ in 0..n_replicas {
                replicas.push(node_ref(r)?);
            }
            partitions.push(PartitionMap { primary, replicas });
        }
        Ok(ClusterMap { epoch, partitions })
    }
}

/// The shared, adopt-if-newer view of the cluster map. One directory is
/// shared by every server running on a node (the partition primary and
/// any promoted replicas), so a map installed by the failover monitor is
/// immediately what `CLUSTER_MAP` and `CLUSTER_QUERY` serve.
#[derive(Debug)]
pub struct ClusterDirectory {
    map: OrderedMutex<ClusterMap>,
}

impl ClusterDirectory {
    /// Start from `initial` (normally [`ClusterMap::initial`]).
    pub fn new(initial: ClusterMap) -> Self {
        ClusterDirectory { map: OrderedMutex::new("cluster-map", initial) }
    }

    /// A snapshot of the current view.
    pub fn get(&self) -> ClusterMap {
        self.map.lock().clone()
    }

    /// The current epoch (cheaper than cloning the whole map).
    pub fn epoch(&self) -> u64 {
        self.map.lock().epoch
    }

    /// Adopt `candidate` iff it supersedes the current view (see
    /// [`ClusterMap::supersedes`]). Returns whether it was adopted.
    pub fn observe(&self, candidate: &ClusterMap) -> bool {
        let mut cur = self.map.lock();
        if candidate.supersedes(&cur) {
            *cur = candidate.clone();
            true
        } else {
            false
        }
    }
}

/// Scatter one `CLUSTER_QUERY` across `map` and merge the partial
/// answers: member/freq go to the key's owning partition, cardinality
/// sums every partition's estimate in partition order, similarity
/// averages them — the exact merge a `P`-shard
/// [`crate::engine::DirectEngine`] applies to its own shards, which is
/// what makes the scatter-gather answer bit-for-bit mirrorable.
///
/// Partitions are visited serially so the f64 merge order is fixed. Any
/// unreachable partition fails the whole query (a partial merge would be
/// silently wrong).
pub fn scatter_query(map: &ClusterMap, op: u8, key: u64, op_timeout: Duration) -> Response {
    if map.partitions.is_empty() {
        return Response::Err("cluster map has no partitions".to_string());
    }
    let leg = |part: usize| -> Result<crate::client::Client, String> {
        let addr = &map.partitions[part].primary.addr;
        crate::client::Client::connect_timeout(addr, op_timeout)
            .map_err(|e| format!("partition {part} at {addr}: {e}"))
    };
    match op {
        cluster_op::MEMBER => {
            let part = map.partition_of(key);
            match leg(part)
                .and_then(|mut c| c.query_member(key).map_err(|e| format!("partition {part}: {e}")))
            {
                Ok(v) => Response::Bool(v),
                Err(e) => Response::Err(e),
            }
        }
        cluster_op::FREQ => {
            let part = map.partition_of(key);
            match leg(part)
                .and_then(|mut c| c.query_freq(key).map_err(|e| format!("partition {part}: {e}")))
            {
                Ok(v) => Response::U64(v),
                Err(e) => Response::Err(e),
            }
        }
        cluster_op::CARD | cluster_op::SIM => {
            let mut sum = 0.0f64;
            for part in 0..map.partitions.len() {
                let est = leg(part).and_then(|mut c| {
                    let r = if op == cluster_op::CARD { c.query_card() } else { c.query_sim() };
                    r.map_err(|e| format!("partition {part}: {e}"))
                });
                match est {
                    Ok(v) => sum += v,
                    Err(e) => return Response::Err(e),
                }
            }
            if op == cluster_op::SIM {
                sum /= map.partitions.len() as f64;
            }
            Response::F64(sum)
        }
        other => Response::Err(format!("unknown cluster query op {other}")),
    }
}

/// Scatter one `CLUSTER_QUERY_BATCH` across `map`: keys are grouped by
/// owning partition, each involved partition gets **one** `QUERY_BATCH`
/// leg (N keys per scatter round-trip instead of N round-trips), and the
/// per-key answers are reassembled into request order. Only the per-key
/// ops are batchable; the whole-stream merges (card, sim) have no per-key
/// answer to reorder. Like [`scatter_query`], any unreachable partition
/// fails the whole query.
pub fn scatter_query_batch(
    map: &ClusterMap,
    op: u8,
    keys: &[u64],
    op_timeout: Duration,
) -> Response {
    if op != cluster_op::MEMBER && op != cluster_op::FREQ {
        return Response::Err(format!(
            "cluster batch query op {op} must be member ({}) or freq ({})",
            cluster_op::MEMBER,
            cluster_op::FREQ
        ));
    }
    if map.partitions.is_empty() {
        return Response::Err("cluster map has no partitions".to_string());
    }
    if keys.is_empty() {
        return Response::U64s(Vec::new());
    }
    // Group keys by partition, remembering each key's request position.
    let mut per: Vec<(Vec<u64>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); map.partitions.len()];
    for (i, &key) in keys.iter().enumerate() {
        let part = map.partition_of(key);
        // audit:allow(growth): per-partition split of one batch, total bounded by MAX_BATCH at decode
        per[part].0.push(key);
        // audit:allow(growth): position index of the same bounded batch
        per[part].1.push(i);
    }
    let mut out = vec![0u64; keys.len()];
    for (part, (part_keys, positions)) in per.into_iter().enumerate() {
        if part_keys.is_empty() {
            continue;
        }
        let addr = &map.partitions[part].primary.addr;
        let leg = crate::client::Client::connect_timeout(addr, op_timeout)
            .map_err(|e| format!("partition {part} at {addr}: {e}"))
            .and_then(|mut c| {
                c.query_batch(op, &part_keys).map_err(|e| format!("partition {part}: {e}"))
            });
        let values = match leg {
            Ok(v) => v,
            Err(e) => return Response::Err(e),
        };
        if values.len() != positions.len() {
            return Response::Err(format!(
                "partition {part}: batch answered {} values for {} keys",
                values.len(),
                positions.len()
            ));
        }
        for (pos, value) in positions.into_iter().zip(values) {
            out[pos] = value;
        }
    }
    Response::U64s(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn node(id: u64) -> NodeRef {
        NodeRef { node_id: id, addr: format!("127.0.0.1:{}", 7000 + id) }
    }

    fn roster(n: u64) -> Vec<NodeRef> {
        (1..=n).map(node).collect()
    }

    fn alive(ids: &[u64]) -> BTreeSet<u64> {
        ids.iter().copied().collect()
    }

    #[test]
    fn codec_round_trip() {
        let map = ClusterMap::initial(&roster(3));
        let bytes = map.encode();
        let mut r = Reader::new(&bytes);
        let back = ClusterMap::decode_from(&mut r).expect("decode");
        assert!(r.finish().is_ok());
        assert_eq!(back, map);
    }

    #[test]
    fn partition_of_matches_shard_of() {
        let map = ClusterMap::initial(&roster(5));
        let cfg = EngineConfig { shards: 5, ..Default::default() };
        for k in 0..10_000u64 {
            assert_eq!(map.partition_of(k), cfg.shard_of(k), "key {k}");
        }
    }

    #[test]
    fn initial_map_is_a_rotated_ring() {
        let map = ClusterMap::initial(&roster(3));
        assert_eq!(map.epoch, 1);
        for (p, pm) in map.partitions.iter().enumerate() {
            assert_eq!(pm.primary.node_id, p as u64 + 1);
            assert_eq!(pm.replicas.len(), 1);
            assert_eq!(pm.replicas[0].node_id, (p as u64 + 1) % 3 + 1);
        }
        assert!(ClusterMap::initial(&roster(1)).partitions[0].replicas.is_empty());
    }

    #[test]
    fn elect_promotes_lowest_id_live_replica() {
        let mut map = ClusterMap::initial(&roster(3));
        map.partitions[0].replicas.push(node(3)); // partition 0: primary 1, replicas {2, 3}
        let next = map.elect(&alive(&[2, 3])).expect("changed");
        assert_eq!(next.epoch, 2);
        assert_eq!(next.partitions[0].primary.node_id, 2);
        assert_eq!(
            next.partitions[0].replicas.iter().map(|r| r.node_id).collect::<Vec<_>>(),
            vec![3]
        );
        // Partition 2 (primary 3) is untouched; partition 1 (primary 2) too.
        assert_eq!(next.partitions[1].primary.node_id, 2);
        assert_eq!(next.partitions[2].primary.node_id, 3);
    }

    #[test]
    fn elect_is_a_noop_when_all_primaries_live_or_no_replica_survives() {
        let map = ClusterMap::initial(&roster(3));
        assert!(map.elect(&alive(&[1, 2, 3])).is_none());
        // Node 1 and its replica holder (node 2 backs partition 0? no —
        // partition 0 is replicated on node 2) both dead: partition 0 has
        // no live replica, partitions 1/2 elect nothing either way.
        let next = map.elect(&alive(&[3])).expect("partition 1 fails over to 3");
        assert_eq!(next.partitions[0].primary.node_id, 1, "no live replica: unchanged");
        assert_eq!(next.partitions[1].primary.node_id, 3);
    }

    #[test]
    fn supersedes_is_a_total_order() {
        let a = ClusterMap::initial(&roster(3));
        let b = a.elect(&alive(&[2, 3])).expect("changed");
        assert!(b.supersedes(&a));
        assert!(!a.supersedes(&b));
        assert!(!a.supersedes(&a.clone()));
        // Same epoch, different content: exactly one side wins.
        let mut c = a.clone();
        c.partitions[0].primary.addr = "127.0.0.1:9999".to_string();
        assert_ne!(a.supersedes(&c), c.supersedes(&a));
    }

    #[test]
    fn directory_adopts_only_newer() {
        let a = ClusterMap::initial(&roster(3));
        let b = a.elect(&alive(&[2, 3])).expect("changed");
        let dir = ClusterDirectory::new(a.clone());
        assert!(!dir.observe(&a), "same map is not newer");
        assert!(dir.observe(&b));
        assert_eq!(dir.epoch(), 2);
        assert!(!dir.observe(&a), "older map is rejected");
        assert_eq!(dir.get(), b);
    }
}
