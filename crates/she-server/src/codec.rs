//! Length-prefixed framing over any `Read`/`Write` pair.
//!
//! A frame is `u32` little-endian payload length + payload, payload at
//! most [`MAX_FRAME`](crate::protocol::MAX_FRAME) bytes. The codec is
//! blocking; callers that need to poll a shutdown flag set a read timeout
//! on the socket and treat `WouldBlock`/`TimedOut` as "no frame yet".

use crate::protocol::MAX_FRAME;
use std::io::{self, Read, Write};

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds MAX_FRAME"));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload. Returns `Ok(None)` on clean EOF *before* a
/// length prefix; EOF mid-frame is an `UnexpectedEof` error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled read_exact for the prefix so a clean EOF at a frame
    // boundary is distinguishable from a torn frame.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof inside frame header"))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // A timeout mid-prefix would desynchronise the stream; only
            // surface WouldBlock/TimedOut when no header byte has arrived.
            Err(e)
                if filled == 0
                    && matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                return Err(e)
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof inside frame body"))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Inside a frame body a timeout just means "keep waiting": the
            // peer has committed to sending `len` bytes.
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"");
        assert!(read_frame(&mut c).unwrap().is_none());
    }

    #[test]
    fn torn_header_is_an_error() {
        let mut c = Cursor::new(vec![5u8, 0]);
        assert_eq!(read_frame(&mut c).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn torn_body_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversize_prefix_rejected_without_allocation() {
        let mut c = Cursor::new((u32::MAX).to_le_bytes().to_vec());
        assert_eq!(read_frame(&mut c).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }
}
