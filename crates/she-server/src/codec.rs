//! Length-prefixed framing over any `Read`/`Write` pair.
//!
//! A frame is `u32` little-endian payload length + payload, payload at
//! most [`MAX_FRAME`](crate::protocol::MAX_FRAME) bytes. The codec is
//! blocking; callers that need to poll a shutdown flag set a read timeout
//! on the socket and treat `WouldBlock`/`TimedOut` as "no frame yet".

use crate::protocol::MAX_FRAME;
use she_core::convert::usize_of;
use std::fmt;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// A payload too large for the `u32` length prefix / `MAX_FRAME` cap.
///
/// Carried as the source of the `InvalidInput` error [`write_frame`]
/// returns, so callers can downcast and distinguish "you built an
/// impossible frame" from transport failures. Before this type existed
/// the length was cast with `as u32` — a payload over 4 GiB would have
/// written a silently truncated prefix and desynchronised the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The rejected payload length in bytes.
    pub len: usize,
}

impl fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame payload of {} bytes exceeds MAX_FRAME ({MAX_FRAME})", self.len)
    }
}

impl std::error::Error for FrameTooLarge {}

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    // MAX_FRAME < u32::MAX, so a length that passes the cap check always
    // fits the prefix; try_from (not `as`) keeps that connection checked.
    let len = match u32::try_from(payload.len()) {
        Ok(len) if payload.len() <= MAX_FRAME => len,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                FrameTooLarge { len: payload.len() },
            ))
        }
    };
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Outcome of one deadline-aware frame read.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameIn {
    /// A complete frame payload arrived.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary (peer hung up between frames).
    Eof,
    /// No header byte arrived before the socket read timeout fired. The
    /// stream is still synchronised; the caller may poll again.
    Idle,
    /// A frame *started* (at least one header byte arrived) but did not
    /// complete within the deadline. The stream is desynchronised; the
    /// only safe response is to drop the connection.
    Stalled,
}

/// Read one frame's payload. Returns `Ok(None)` on clean EOF *before* a
/// length prefix; EOF mid-frame is an `UnexpectedEof` error. Socket read
/// timeouts surface as `WouldBlock` before the first header byte and are
/// swallowed (wait forever) once a frame has started — use
/// [`read_frame_deadline`] when a stalled peer must be evicted.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    match read_frame_deadline(r, Duration::MAX)? {
        FrameIn::Frame(payload) => Ok(Some(payload)),
        FrameIn::Eof => Ok(None),
        FrameIn::Idle => Err(io::Error::new(io::ErrorKind::WouldBlock, "no frame yet")),
        // Unreachable with an infinite deadline, but keep a sane mapping.
        FrameIn::Stalled => Err(io::Error::new(io::ErrorKind::TimedOut, "frame stalled")),
    }
}

/// Read one frame's payload with an overall per-frame deadline.
///
/// The deadline clock starts when the *first header byte* arrives, so an
/// idle-but-healthy connection is [`FrameIn::Idle`] (poll again), while a
/// peer that starts a frame and stalls mid-way is [`FrameIn::Stalled`]
/// once `deadline` elapses — even if it trickles a byte per timeout tick
/// (slow-loris), because the deadline is checked on every loop iteration.
/// The reader relies on the caller having set a finite socket read
/// timeout; without one a silent peer blocks in `read` and the deadline
/// can only be observed after the next byte.
pub fn read_frame_deadline<R: Read>(r: &mut R, deadline: Duration) -> io::Result<FrameIn> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled read_exact for the prefix so a clean EOF at a frame
    // boundary is distinguishable from a torn frame.
    let mut filled = 0;
    let mut started: Option<Instant> = None;
    while filled < 4 {
        if let Some(t0) = started {
            if t0.elapsed() >= deadline {
                return Ok(FrameIn::Stalled);
            }
        }
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameIn::Eof),
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof inside frame header"))
            }
            Ok(n) => {
                if started.is_none() {
                    started = Some(Instant::now());
                }
                filled += n;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // A timeout mid-prefix would desynchronise the stream; only
            // report Idle when no header byte has arrived.
            Err(e)
                if filled == 0
                    && matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                return Ok(FrameIn::Idle)
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
    let started = started.unwrap_or_else(Instant::now);
    let len = usize_of(u64::from(u32::from_le_bytes(len_buf)));
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        if started.elapsed() >= deadline {
            return Ok(FrameIn::Stalled);
        }
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof inside frame body"))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Inside a frame body a timeout means "keep waiting" (the peer
            // has committed to `len` bytes) — until the deadline says
            // otherwise at the top of the loop.
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FrameIn::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"");
        assert!(read_frame(&mut c).unwrap().is_none());
    }

    #[test]
    fn oversize_payload_is_a_typed_error_not_a_truncated_prefix() {
        let payload = vec![0u8; MAX_FRAME + 1];
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let inner = err.get_ref().expect("typed source");
        let too_large = inner.downcast_ref::<FrameTooLarge>().expect("FrameTooLarge");
        assert_eq!(too_large.len, MAX_FRAME + 1);
        // Nothing — not even a length prefix — reached the stream.
        assert!(buf.is_empty());
    }

    #[test]
    fn torn_header_is_an_error() {
        let mut c = Cursor::new(vec![5u8, 0]);
        assert_eq!(read_frame(&mut c).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn torn_body_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversize_prefix_rejected_without_allocation() {
        let mut c = Cursor::new((u32::MAX).to_le_bytes().to_vec());
        assert_eq!(read_frame(&mut c).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    /// Feeds scripted chunks; `None` entries simulate a socket read
    /// timeout (`WouldBlock`), and after the script runs out every read
    /// times out.
    struct Scripted {
        steps: Vec<Option<Vec<u8>>>,
        next: usize,
    }

    impl Scripted {
        fn new(steps: Vec<Option<Vec<u8>>>) -> Self {
            Self { steps, next: 0 }
        }
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let step = self.steps.get(self.next).cloned();
            self.next += 1;
            match step {
                Some(Some(chunk)) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    Ok(n)
                }
                Some(None) | None => Err(io::Error::new(io::ErrorKind::WouldBlock, "tick")),
            }
        }
    }

    #[test]
    fn deadline_idle_before_any_byte() {
        let mut r = Scripted::new(vec![None]);
        assert_eq!(read_frame_deadline(&mut r, Duration::from_millis(50)).unwrap(), FrameIn::Idle);
    }

    #[test]
    fn deadline_stalls_mid_header() {
        // Two header bytes arrive, then silence: the frame has started, so
        // the reader must report Stalled (never Idle) once the deadline
        // passes.
        let mut r = Scripted::new(vec![Some(vec![5, 0])]);
        assert_eq!(read_frame_deadline(&mut r, Duration::ZERO).unwrap(), FrameIn::Stalled);
    }

    #[test]
    fn deadline_stalls_mid_body() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2); // header + "hel"
        let mut r = Scripted::new(vec![Some(buf)]);
        assert_eq!(read_frame_deadline(&mut r, Duration::ZERO).unwrap(), FrameIn::Stalled);
    }

    #[test]
    fn deadline_slow_loris_trickle_still_stalls() {
        // One byte per timeout tick: each read makes "progress", but the
        // per-frame clock still expires.
        let mut steps = vec![Some(vec![9u8]), None, Some(vec![0u8]), None];
        steps.extend(std::iter::repeat_with(|| Some(vec![0u8])).take(64).flat_map(|s| [s, None]));
        let mut r = Scripted::new(steps);
        let got = read_frame_deadline(&mut r, Duration::ZERO).unwrap();
        assert_eq!(got, FrameIn::Stalled);
    }

    #[test]
    fn deadline_whole_frame_within_budget() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        // An idle tick before the frame is Idle (poll again), then the
        // whole frame lands well inside the budget. (Scripted hands each
        // chunk to exactly one read call, so header and body are
        // separate steps.)
        let (header, body) = buf.split_at(4);
        let mut r = Scripted::new(vec![None, Some(header.to_vec()), Some(body.to_vec())]);
        let deadline = Duration::from_secs(5);
        assert_eq!(read_frame_deadline(&mut r, deadline).unwrap(), FrameIn::Idle);
        let got = read_frame_deadline(&mut r, deadline).unwrap();
        assert_eq!(got, FrameIn::Frame(b"hello".to_vec()));
    }

    #[test]
    fn read_frame_surfaces_idle_as_would_block() {
        let mut r = Scripted::new(vec![None]);
        assert_eq!(read_frame(&mut r).unwrap_err().kind(), io::ErrorKind::WouldBlock);
    }
}
