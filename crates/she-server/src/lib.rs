//! she-server: a std-only concurrent stream-serving subsystem over the
//! SHE engines.
//!
//! Turns the in-process sliding-window sketches of `she-core` into a
//! network service: `S` shard worker threads each own one
//! [`ShardEngine`](engine::ShardEngine) (membership, cardinality,
//! frequency, and similarity structures over the shard's slice of the key
//! space), fed through bounded queues from a single epoll reactor thread
//! speaking a length-prefixed binary protocol over TCP.
//!
//! The crate is deliberately dependency-free beyond the workspace:
//! `std::net` for transport, `std::thread` for workers, `std::sync::mpsc`
//! for the queues, and four raw `epoll` syscalls ([`sys`]) for readiness.
//! See `docs/PROTOCOL.md` for the wire format, `docs/SERVER.md` for the
//! serving tier, and module docs for the concurrency story:
//!
//! * [`protocol`] — message types and their binary encoding;
//! * [`codec`] — `u32`-length-prefixed framing (blocking I/O form);
//! * [`conn`] — the sans-IO per-connection protocol state machine;
//! * [`sys`] — minimal epoll FFI shims and the reactor waker;
//! * [`engine`] — the per-shard state and the serial reference engine;
//! * [`worker`] — shard worker loop and its batch-drained job queue;
//! * [`server`] — server lifecycle, dispatch, backpressure, shutdown;
//! * [`client`] — blocking client with backoff-based `BUSY` retry;
//! * [`loadgen`] — workload driver with latency reports and a
//!   bit-exact verification mode;
//! * [`snapshot`] — whole-server checkpoints and shard rebalancing
//!   (protocol v2: `SNAPSHOT` / `SNAPSHOT_ALL` / `RESTORE`);
//! * [`repl`] — the primary's op log, record/bootstrap codecs, and peer
//!   registry (protocol v3; see `docs/REPLICATION.md`);
//! * [`cluster`] — the partition map, deterministic failover election,
//!   and scatter-gather query merge (protocol v4; see
//!   `docs/CLUSTER.md`);
//! * `readpath` — the QUERY_FAST accelerator's server glue: a sharded
//!   read-only mirror behind `she-readpath`'s fast summary + mark cache,
//!   refreshed from the op-log tail (protocol v5; see
//!   `docs/READPATH.md`);
//! * [`store`] — generation-rotating checkpoint store with corrupt-file
//!   quarantine and automatic fallback;
//! * [`backoff`] — capped exponential backoff with jitter, shared by the
//!   client's retry loop and the replica's reconnects.

// The serving path must never truncate a length or a count silently:
// `she audit`'s cast rule holds this crate at a zero baseline, and the
// compiler enforces the same contract on every new cast.
#![deny(clippy::cast_possible_truncation)]

pub mod backoff;
pub mod client;
pub mod cluster;
pub mod codec;
pub mod conn;
pub mod engine;
pub mod loadgen;
pub mod protocol;
pub(crate) mod reactor;
pub(crate) mod readpath;
pub mod repl;
pub mod server;
pub mod snapshot;
pub mod store;
pub mod sys;
pub mod worker;

pub use conn::{Connection, Event, FrameEvent};

pub use backoff::Backoff;
pub use client::Client;
pub use cluster::{cluster_op, ClusterDirectory, ClusterMap, NodeRef, PartitionMap};
pub use engine::{DirectEngine, EngineConfig, ShardEngine};
pub use loadgen::{LoadSummary, LoadgenConfig, Mode};
pub use protocol::{
    ClusterStatusInfo, PeerStatus, ProtoError, ReadpathStatus, Request, Response, ShardStats,
    PROTOCOL_VERSION,
};
pub use repl::{Bootstrap, Record, ReplLog};
pub use server::{Injector, ReplicaStatus, Role, Server, ServerConfig};
pub use she_readpath::{op as fast_op, FastAnswer, ReadPath, ReadPathConfig};
pub use snapshot::Checkpoint;
pub use store::{CheckpointStore, LoadOutcome};
