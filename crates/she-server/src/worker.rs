//! Shard worker threads: each owns one [`ShardEngine`] outright and
//! drains a bounded job queue, so the sketch hot path takes no locks.
//!
//! Jobs arrive over `std::sync::mpsc` — the channel doubles as the
//! shutdown protocol: when every sender (the reactor, the injector, any
//! offload thread) has dropped, `recv` returns `Err` *after* the queue is
//! empty, so every enqueued insert is applied before the worker exits
//! (drain-on-shutdown for free).
//!
//! Each wakeup drains a **batch** of queued jobs (up to
//! [`DRAIN_BATCH`]) instead of one, amortizing the channel rendezvous
//! over a run of ops when the queue is deep — the per-shard batch
//! dispatch half of the reactor rewrite.

use crate::cluster::cluster_op;
use crate::engine::ShardEngine;
use crate::protocol::{Response, ShardStats};
use crate::sys::Waker;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SendError, Sender, SyncSender, TrySendError};
use std::sync::Arc;

/// How many queued jobs one worker wakeup drains before checking the
/// channel again. Bounds the latency a just-enqueued query can hide
/// behind while still amortizing wakeups under load.
pub const DRAIN_BATCH: usize = 64;

/// One query answer, typed by the query that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// Membership.
    Bool(bool),
    /// Frequency.
    U64(u64),
    /// Cardinality / similarity contribution.
    F64(f64),
    /// Batch query: `(request position, value)` per key this shard owns.
    Slots(Vec<(u32, u64)>),
    /// A full response computed off the reactor (offloaded ops).
    Resp(Response),
}

/// A completed query headed back to the reactor: `slot`/`gen` name the
/// connection, `token` names the request (a connection's dispatch
/// counter — a stale completion whose token no longer matches is
/// dropped), `shard` indexes multi-shard gathers.
#[derive(Debug)]
pub struct Completion {
    /// Connection slab slot.
    pub slot: u32,
    /// Slot generation at dispatch time.
    pub gen: u32,
    /// Connection request counter at dispatch time.
    pub token: u64,
    /// Which shard answered (orders f64 merges).
    pub shard: usize,
    /// The answer.
    pub answer: Answer,
}

/// Where a query's answer goes: a rendezvous channel (blocking callers —
/// the injector, offloaded ops, tests) or the reactor's completion queue
/// plus its waker.
#[derive(Debug, Clone)]
pub enum QuerySink {
    /// Blocking rendezvous.
    Channel(SyncSender<Answer>),
    /// Post a [`Completion`] and wake the reactor.
    Reactor {
        /// The reactor's completion queue.
        tx: Sender<Completion>,
        /// Wakes the reactor's `epoll_wait`.
        waker: Arc<Waker>,
        /// Connection slab slot.
        slot: u32,
        /// Slot generation at dispatch time.
        gen: u32,
        /// Connection request counter at dispatch time.
        token: u64,
        /// Which shard this sink is answering for.
        shard: usize,
    },
}

impl QuerySink {
    /// Deliver the answer. Send failures are ignored — a connection that
    /// went away simply doesn't get its answer.
    pub fn send(self, answer: Answer) {
        match self {
            QuerySink::Channel(tx) => {
                let _ = tx.send(answer);
            }
            QuerySink::Reactor { tx, waker, slot, gen, token, shard } => {
                let _ = tx.send(Completion { slot, gen, token, shard, answer });
                waker.wake();
            }
        }
    }
}

/// One unit of work for a shard. Queries carry a [`QuerySink`] for the
/// answer; batched inserts are fire-and-forget (admission control
/// happened at enqueue time).
#[derive(Debug)]
pub enum Job {
    /// Apply a run of same-stream inserts, in order.
    Batch { stream: u8, keys: Vec<u64> },
    /// Membership of `key` in stream A (answers [`Answer::Bool`]).
    Member { key: u64, sink: QuerySink },
    /// This shard's cardinality contribution (answers [`Answer::F64`]).
    Card { sink: QuerySink },
    /// Frequency of `key` in stream A (answers [`Answer::U64`]).
    Freq { key: u64, sink: QuerySink },
    /// This shard's A/B Jaccard estimate (answers [`Answer::F64`]).
    Sim { sink: QuerySink },
    /// Batch point query over this shard's slice of the keys: `op` is
    /// `cluster_op::{MEMBER, FREQ}`, `pos[i]` is `keys[i]`'s position in
    /// the original request (answers [`Answer::Slots`]).
    QueryBatch { op: u8, keys: Vec<u64>, pos: Vec<u32>, sink: QuerySink },
    /// Counter snapshot.
    Stats { reply: SyncSender<ShardStats> },
    /// Serialize this shard's state. Rides the same FIFO queue as the
    /// inserts, so the snapshot is quiescent — it reflects every insert
    /// enqueued before it and none after, without stalling other shards.
    Snapshot { reply: SyncSender<Vec<u8>> },
    /// Replace this shard's state with a snapshot frame.
    Restore { data: Vec<u8>, reply: SyncSender<Result<(), String>> },
    /// Anti-entropy: fold a same-placement snapshot of this shard into
    /// the current state (cell-wise merge, counter max — idempotent).
    Merge { data: Vec<u8>, reply: SyncSender<Result<(), String>> },
}

/// A shard's bounded job queue plus a live depth gauge: every send bumps
/// the gauge before the job is enqueued and the worker decrements it as
/// jobs are dequeued, so `CLUSTER_STATUS` can report per-shard backlog
/// without touching the queues themselves.
#[derive(Debug, Clone)]
pub struct ShardQueue {
    tx: SyncSender<Job>,
    depth: Arc<AtomicU64>,
}

impl ShardQueue {
    /// Build a bounded queue of `capacity` jobs; returns the sending
    /// half, the worker's receiver, and the worker's decrement handle.
    pub fn new(capacity: usize) -> (ShardQueue, Receiver<Job>, Arc<AtomicU64>) {
        let (tx, rx) = sync_channel(capacity);
        let depth = Arc::new(AtomicU64::new(0));
        (ShardQueue { tx, depth: Arc::clone(&depth) }, rx, depth)
    }

    /// Blocking send. The job counts toward the depth from just before
    /// enqueue until the worker dequeues it.
    pub fn send(&self, job: Job) -> Result<(), SendError<Job>> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.send(job) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Non-blocking send (the admission-control / read-shed path).
    pub fn try_send(&self, job: Job) -> Result<(), TrySendError<Job>> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Jobs currently enqueued (or mid-rendezvous) for this shard.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }
}

fn apply(engine: &mut ShardEngine, job: Job) {
    match job {
        Job::Batch { stream, keys } => {
            for k in keys {
                engine.insert(stream, k);
            }
        }
        Job::Member { key, sink } => sink.send(Answer::Bool(engine.member(key))),
        Job::Card { sink } => sink.send(Answer::F64(engine.cardinality())),
        Job::Freq { key, sink } => sink.send(Answer::U64(engine.frequency(key))),
        Job::Sim { sink } => sink.send(Answer::F64(engine.similarity())),
        Job::QueryBatch { op, keys, pos, sink } => {
            let mut slots = Vec::with_capacity(keys.len());
            for (k, p) in keys.into_iter().zip(pos) {
                let v = if op == cluster_op::MEMBER {
                    u64::from(engine.member(k))
                } else {
                    engine.frequency(k)
                };
                slots.push((p, v));
            }
            sink.send(Answer::Slots(slots));
        }
        Job::Stats { reply } => {
            let _ = reply.send(engine.stats());
        }
        Job::Snapshot { reply } => {
            let _ = reply.send(engine.snapshot());
        }
        Job::Restore { data, reply } => {
            let _ = reply.send(engine.restore(&data).map_err(|e| e.to_string()));
        }
        Job::Merge { data, reply } => {
            let _ = reply.send(engine.reconcile(&data).map_err(|e| e.to_string()));
        }
    }
}

/// Drain `rx` until every sender is gone; returns the shard's final
/// counters. Each blocking `recv` is followed by a `try_recv` drain of up
/// to [`DRAIN_BATCH`]` - 1` more jobs, so a deep queue is consumed in
/// batches per wakeup rather than one rendezvous per job. `depth` is the
/// paired [`ShardQueue`]'s gauge, decremented once per dequeued job.
pub fn run_worker(mut engine: ShardEngine, rx: Receiver<Job>, depth: Arc<AtomicU64>) -> ShardStats {
    'serve: while let Ok(first) = rx.recv() {
        depth.fetch_sub(1, Ordering::Relaxed);
        apply(&mut engine, first);
        for _ in 1..DRAIN_BATCH {
            match rx.try_recv() {
                Ok(job) => {
                    depth.fetch_sub(1, Ordering::Relaxed);
                    apply(&mut engine, job);
                }
                Err(_) => continue 'serve,
            }
        }
    }
    engine.stats()
}
