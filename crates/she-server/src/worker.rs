//! Shard worker threads: each owns one [`ShardEngine`] outright and
//! drains a bounded job queue, so the sketch hot path takes no locks.
//!
//! Jobs arrive over `std::sync::mpsc` — the channel doubles as the
//! shutdown protocol: when every connection handler (and the listener)
//! has dropped its sender, `recv` returns `Err` *after* the queue is
//! empty, so every enqueued insert is applied before the worker exits
//! (drain-on-shutdown for free).

use crate::engine::ShardEngine;
use crate::protocol::ShardStats;
use std::sync::mpsc::{Receiver, SyncSender};

/// One unit of work for a shard. Queries carry a rendezvous channel for
/// the answer; batched inserts are fire-and-forget (admission control
/// happened at enqueue time).
#[derive(Debug)]
pub enum Job {
    /// Apply a run of same-stream inserts, in order.
    Batch { stream: u8, keys: Vec<u64> },
    /// Membership of `key` in stream A.
    Member { key: u64, reply: SyncSender<bool> },
    /// This shard's cardinality contribution.
    Card { reply: SyncSender<f64> },
    /// Frequency of `key` in stream A.
    Freq { key: u64, reply: SyncSender<u64> },
    /// This shard's A/B Jaccard estimate.
    Sim { reply: SyncSender<f64> },
    /// Counter snapshot.
    Stats { reply: SyncSender<ShardStats> },
    /// Serialize this shard's state. Rides the same FIFO queue as the
    /// inserts, so the snapshot is quiescent — it reflects every insert
    /// enqueued before it and none after, without stalling other shards.
    Snapshot { reply: SyncSender<Vec<u8>> },
    /// Replace this shard's state with a snapshot frame.
    Restore { data: Vec<u8>, reply: SyncSender<Result<(), String>> },
    /// Anti-entropy: fold a same-placement snapshot of this shard into
    /// the current state (cell-wise merge, counter max — idempotent).
    Merge { data: Vec<u8>, reply: SyncSender<Result<(), String>> },
}

/// Drain `rx` until every sender is gone; returns the shard's final
/// counters. Reply sends ignore errors — a client that hung up simply
/// doesn't get its answer.
pub fn run_worker(mut engine: ShardEngine, rx: Receiver<Job>) -> ShardStats {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Batch { stream, keys } => {
                for k in keys {
                    engine.insert(stream, k);
                }
            }
            Job::Member { key, reply } => {
                let _ = reply.send(engine.member(key));
            }
            Job::Card { reply } => {
                let _ = reply.send(engine.cardinality());
            }
            Job::Freq { key, reply } => {
                let _ = reply.send(engine.frequency(key));
            }
            Job::Sim { reply } => {
                let _ = reply.send(engine.similarity());
            }
            Job::Stats { reply } => {
                let _ = reply.send(engine.stats());
            }
            Job::Snapshot { reply } => {
                let _ = reply.send(engine.snapshot());
            }
            Job::Restore { data, reply } => {
                let _ = reply.send(engine.restore(&data).map_err(|e| e.to_string()));
            }
            Job::Merge { data, reply } => {
                let _ = reply.send(engine.reconcile(&data).map_err(|e| e.to_string()));
            }
        }
    }
    engine.stats()
}
