//! A blocking client for the she-server wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues one request at a
//! time (the protocol is strictly request/response). `BUSY` responses to
//! inserts — and `OVERLOADED` responses to any request — are retried
//! internally with capped exponential backoff plus jitter, up to a
//! bounded number of attempts — safe because both mean the server
//! applied nothing, and the jitter keeps a fleet of blocked clients from
//! hammering the queue in lockstep.
//!
//! An optional *operation timeout* ([`Client::set_op_timeout`]) bounds
//! each logical operation end to end: the response read, a stalled
//! server, and the whole retry loop all count against one deadline,
//! surfaced as `TimedOut`.

use crate::backoff::Backoff;
use crate::cluster::ClusterMap;
use crate::codec::{read_frame, read_frame_deadline, write_frame, FrameIn};
use crate::protocol::{
    ClusterStatusInfo, Request, Response, ShardStats, MAX_BATCH, PROTOCOL_VERSION,
};
use crate::repl::Bootstrap;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Attempts per operation before giving up on a persistently-full shard
/// (`BUSY`) or persistently-shedding server (`OVERLOADED`).
const MAX_BUSY_RETRIES: u32 = 64;

/// Ceiling on one backoff sleep while a shard queue stays full.
const BUSY_BACKOFF_CAP: Duration = Duration::from_millis(64);

/// Socket read-timeout tick used while an operation deadline is armed;
/// the poll interval at which the deadline is re-checked.
const DEADLINE_TICK: Duration = Duration::from_millis(20);

fn deadline_exceeded() -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, "operation deadline exceeded")
}

fn bad_reply(resp: Response) -> io::Error {
    let msg = match resp {
        Response::Err(m) => format!("server error: {m}"),
        Response::NotPrimary { primary } => {
            format!("server is a read-only replica; writes go to the primary at {primary}")
        }
        Response::Overloaded { retry_after_ms } => {
            format!("server overloaded; retry after {retry_after_ms} ms")
        }
        other => format!("unexpected response {other:?}"),
    };
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A connected she-server client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// `BUSY` responses received (and retried) so far — a backpressure
    /// gauge for load generators.
    pub busy_retries: u64,
    /// `OVERLOADED` responses received (and retried) so far — the
    /// server-side shed gauge.
    pub shed_retries: u64,
    /// Total per-operation deadline; `None` = wait forever (the default).
    op_timeout: Option<Duration>,
}

impl Client {
    /// Connect; `addr` is anything `ToSocketAddrs` accepts.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, busy_retries: 0, shed_retries: 0, op_timeout: None })
    }

    /// Connect with a bound on the connect itself *and* on every
    /// subsequent operation (see [`Client::set_op_timeout`]) — the
    /// scatter-gather and gossip paths, where a dead peer must fail the
    /// leg quickly instead of wedging the caller.
    pub fn connect_timeout<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<Client> {
        let sa = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&sa, timeout)?;
        stream.set_nodelay(true)?;
        let mut client = Client { stream, busy_retries: 0, shed_retries: 0, op_timeout: None };
        client.set_op_timeout(Some(timeout))?;
        Ok(client)
    }

    /// Bound every subsequent operation — request write, response read,
    /// and the whole `BUSY`/`OVERLOADED` retry loop — by `timeout` total.
    /// Exceeding it surfaces as `TimedOut`. `None` restores the default
    /// (wait forever).
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        // The read timeout is a short tick so the deadline is re-checked
        // even while the server is silent; writes get the full budget.
        let tick = timeout.map(|t| t.min(DEADLINE_TICK).max(Duration::from_millis(1)));
        self.stream.set_read_timeout(tick)?;
        self.stream.set_write_timeout(timeout)?;
        self.op_timeout = timeout;
        Ok(())
    }

    /// When the next operation must be finished, given the timeout.
    fn op_deadline(&self) -> Option<Instant> {
        self.op_timeout.map(|t| Instant::now() + t)
    }

    /// One request, one response, optionally bounded by an absolute
    /// deadline.
    fn call_by(&mut self, req: &Request, by: Option<Instant>) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode()).map_err(|e| {
            if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
                deadline_exceeded()
            } else {
                e
            }
        })?;
        let payload = match by {
            None => read_frame(&mut self.stream)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?,
            Some(by) => loop {
                let left = by.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(deadline_exceeded());
                }
                match read_frame_deadline(&mut self.stream, left)? {
                    FrameIn::Frame(p) => break p,
                    FrameIn::Eof => {
                        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
                    }
                    FrameIn::Idle => continue,
                    FrameIn::Stalled => return Err(deadline_exceeded()),
                }
            },
        };
        Response::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// One request, one response, under this client's operation timeout.
    fn call(&mut self, req: &Request) -> io::Result<Response> {
        let by = self.op_deadline();
        self.call_by(req, by)
    }

    /// Issue a request, retrying `BUSY` and `OVERLOADED` with capped
    /// exponential backoff + jitter seeded from the server's hint. The
    /// operation deadline (when set) spans the entire retry loop.
    fn call_retrying(&mut self, req: &Request) -> io::Result<Response> {
        let by = self.op_deadline();
        let mut backoff: Option<Backoff> = None;
        for _ in 0..MAX_BUSY_RETRIES {
            let retry_after_ms = match self.call_by(req, by)? {
                Response::Busy { retry_after_ms } => {
                    self.busy_retries += 1;
                    retry_after_ms
                }
                Response::Overloaded { retry_after_ms } => {
                    self.shed_retries += 1;
                    retry_after_ms
                }
                other => return Ok(other),
            };
            let b = backoff.get_or_insert_with(|| {
                let base = Duration::from_millis(retry_after_ms.max(1) as u64);
                Backoff::from_clock(base.min(BUSY_BACKOFF_CAP), BUSY_BACKOFF_CAP)
            });
            let delay = b.next_delay();
            if let Some(by) = by {
                if Instant::now() + delay >= by {
                    return Err(deadline_exceeded());
                }
            }
            std::thread::sleep(delay);
        }
        Err(io::Error::new(io::ErrorKind::TimedOut, "server busy: retries exhausted"))
    }

    /// Issue an insert-class request (retrying backpressure responses).
    fn call_insert(&mut self, req: &Request) -> io::Result<u64> {
        match self.call_retrying(req)? {
            Response::Ok { accepted } => Ok(accepted),
            other => Err(bad_reply(other)),
        }
    }

    /// Insert one key into stream 0 (A) or 1 (B).
    pub fn insert(&mut self, stream: u8, key: u64) -> io::Result<()> {
        self.call_insert(&Request::Insert { stream, key }).map(|_| ())
    }

    /// Insert a slice of keys into one stream, splitting into wire-sized
    /// batches as needed. Returns the number of keys accepted.
    pub fn insert_batch(&mut self, stream: u8, keys: &[u64]) -> io::Result<u64> {
        let mut accepted = 0;
        for chunk in keys.chunks(MAX_BATCH) {
            accepted += self.call_insert(&Request::InsertBatch { stream, keys: chunk.to_vec() })?;
        }
        Ok(accepted)
    }

    /// Sliding-window membership of `key` in stream A. Shed reads
    /// (`OVERLOADED`) are retried like `BUSY` writes.
    pub fn query_member(&mut self, key: u64) -> io::Result<bool> {
        match self.call_retrying(&Request::QueryMember { key })? {
            Response::Bool(v) => Ok(v),
            other => Err(bad_reply(other)),
        }
    }

    /// Sliding-window cardinality of stream A.
    pub fn query_card(&mut self) -> io::Result<f64> {
        match self.call_retrying(&Request::QueryCard)? {
            Response::F64(v) => Ok(v),
            other => Err(bad_reply(other)),
        }
    }

    /// Sliding-window frequency of `key` in stream A.
    pub fn query_freq(&mut self, key: u64) -> io::Result<u64> {
        match self.call_retrying(&Request::QueryFreq { key })? {
            Response::U64(v) => Ok(v),
            other => Err(bad_reply(other)),
        }
    }

    /// Sliding-window A/B Jaccard similarity.
    pub fn query_sim(&mut self) -> io::Result<f64> {
        match self.call_retrying(&Request::QuerySim)? {
            Response::F64(v) => Ok(v),
            other => Err(bad_reply(other)),
        }
    }

    /// Batch point query (v4): one `u64` answer per key, in key order
    /// (`op` is `cluster_op::MEMBER` — answers 0/1 — or
    /// `cluster_op::FREQ`). Splits into wire-sized batches as needed.
    pub fn query_batch(&mut self, op: u8, keys: &[u64]) -> io::Result<Vec<u64>> {
        let mut out = Vec::with_capacity(keys.len());
        for chunk in keys.chunks(MAX_BATCH.max(1)) {
            match self.call_retrying(&Request::QueryBatch { op, keys: chunk.to_vec() })? {
                Response::U64s(values) if values.len() == chunk.len() => out.extend(values),
                Response::U64s(values) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("batch answered {} values for {} keys", values.len(), chunk.len()),
                    ))
                }
                other => return Err(bad_reply(other)),
            }
        }
        Ok(out)
    }

    /// Accelerated point query (v5): answered inline on the reactor from
    /// the read path's mark cache + fast summary, never queued or shed.
    /// `op` is [`fast_op::MEMBER`](crate::fast_op::MEMBER) (→ `Bool`),
    /// [`fast_op::FREQ`](crate::fast_op::FREQ) (→ `U64`), or
    /// [`fast_op::TOPK`](crate::fast_op::TOPK) (→ `U64s`; `key` carries
    /// the requested length). Servers without `--readpath` answer `ERR`.
    pub fn query_fast(&mut self, op: u8, key: u64) -> io::Result<Response> {
        match self.call(&Request::QueryFast { op, key })? {
            r @ (Response::Bool(_) | Response::U64(_) | Response::U64s(_)) => Ok(r),
            other => Err(bad_reply(other)),
        }
    }

    /// Fast membership (v5): [`Client::query_fast`] with the `MEMBER` op.
    pub fn fast_member(&mut self, key: u64) -> io::Result<bool> {
        match self.query_fast(crate::fast_op::MEMBER, key)? {
            Response::Bool(v) => Ok(v),
            other => Err(bad_reply(other)),
        }
    }

    /// Fast frequency (v5): [`Client::query_fast`] with the `FREQ` op.
    pub fn fast_freq(&mut self, key: u64) -> io::Result<u64> {
        match self.query_fast(crate::fast_op::FREQ, key)? {
            Response::U64(v) => Ok(v),
            other => Err(bad_reply(other)),
        }
    }

    /// Drop every cached fast answer (v5): subsequent fast reads refill
    /// from the mirror at its applied position.
    pub fn fast_flush(&mut self) -> io::Result<()> {
        match self.query_fast(crate::fast_op::FLUSH, 0)? {
            Response::Bool(true) => Ok(()),
            other => Err(bad_reply(other)),
        }
    }

    /// Fast top-k (v5): up to `n` `(key, frequency estimate)` pairs,
    /// heaviest first.
    pub fn fast_topk(&mut self, n: u64) -> io::Result<Vec<(u64, u64)>> {
        match self.query_fast(crate::fast_op::TOPK, n)? {
            Response::U64s(flat) => {
                Ok(flat.chunks_exact(2).map(|pair| (pair[0], pair[1])).collect())
            }
            other => Err(bad_reply(other)),
        }
    }

    /// Per-shard server counters.
    pub fn stats(&mut self) -> io::Result<Vec<ShardStats>> {
        match self.call(&Request::Stats)? {
            Response::Stats(v) => Ok(v),
            other => Err(bad_reply(other)),
        }
    }

    /// Negotiate the protocol version: returns what the server will
    /// speak. A v1 server answers `HELLO` with `ERR` (unknown opcode),
    /// which this maps to `Ok(1)` — the downgrade, not a failure.
    pub fn hello(&mut self) -> io::Result<u16> {
        match self.call(&Request::Hello { version: PROTOCOL_VERSION })? {
            Response::Hello { version } => Ok(version),
            Response::Err(_) => Ok(1),
            other => Err(bad_reply(other)),
        }
    }

    /// Fetch one shard's quiescent snapshot (v2 servers only).
    pub fn snapshot(&mut self, shard: u32) -> io::Result<Vec<u8>> {
        match self.call(&Request::Snapshot { shard })? {
            Response::Blob(data) => Ok(data),
            other => Err(bad_reply(other)),
        }
    }

    /// Fetch a whole-server checkpoint (v2 servers only).
    pub fn snapshot_all(&mut self) -> io::Result<Vec<u8>> {
        match self.call(&Request::SnapshotAll)? {
            Response::Blob(data) => Ok(data),
            other => Err(bad_reply(other)),
        }
    }

    /// Replace one shard's state with a snapshot frame (v2 servers only).
    pub fn restore(&mut self, shard: u32, data: &[u8]) -> io::Result<()> {
        match self.call(&Request::Restore { shard, data: data.to_vec() })? {
            Response::Ok { .. } => Ok(()),
            other => Err(bad_reply(other)),
        }
    }

    /// Fetch a replica bootstrap package from a primary (v3): the op-log
    /// cut sequence number plus the checkpoint bytes at that cut.
    pub fn repl_bootstrap(&mut self) -> io::Result<(u64, Vec<u8>)> {
        match self.call(&Request::ReplBootstrap)? {
            Response::Blob(data) => {
                let boot = Bootstrap::decode(&data)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                Ok((boot.seq, boot.checkpoint))
            }
            other => Err(bad_reply(other)),
        }
    }

    /// The node's replication role and positions (v3).
    pub fn cluster_status(&mut self) -> io::Result<ClusterStatusInfo> {
        match self.call(&Request::ClusterStatus)? {
            Response::ClusterStatus(info) => Ok(info),
            other => Err(bad_reply(other)),
        }
    }

    /// Push-pull gossip (v4): offer `map` as node `from_node`; the peer
    /// adopts it if newer and answers with its own current view.
    pub fn cluster_join(&mut self, from_node: u64, map: &ClusterMap) -> io::Result<ClusterMap> {
        match self.call(&Request::ClusterJoin { from_node, map: map.clone() })? {
            Response::ClusterMapReply(m) => Ok(m),
            other => Err(bad_reply(other)),
        }
    }

    /// Fetch the node's current cluster map (v4) — how clients re-route
    /// after a failover without restarting.
    pub fn cluster_map(&mut self) -> io::Result<ClusterMap> {
        match self.call(&Request::ClusterMapGet)? {
            Response::ClusterMapReply(m) => Ok(m),
            other => Err(bad_reply(other)),
        }
    }

    /// Scatter-gather query (v4): the server coordinates across every
    /// partition and merges. Returns the merged `Bool`/`U64`/`F64`
    /// answer; callers match on the variant their `op` implies.
    pub fn cluster_query(&mut self, op: u8, key: u64) -> io::Result<Response> {
        match self.call_retrying(&Request::ClusterQuery { op, key })? {
            r @ (Response::Bool(_) | Response::U64(_) | Response::F64(_)) => Ok(r),
            other => Err(bad_reply(other)),
        }
    }

    /// Scatter-gather batch query (v4): N member/freq keys per scatter
    /// round-trip, answered in key order.
    pub fn cluster_query_batch(&mut self, op: u8, keys: &[u64]) -> io::Result<Vec<u64>> {
        let mut out = Vec::with_capacity(keys.len());
        for chunk in keys.chunks(MAX_BATCH.max(1)) {
            match self.call_retrying(&Request::ClusterQueryBatch { op, keys: chunk.to_vec() })? {
                Response::U64s(values) if values.len() == chunk.len() => out.extend(values),
                Response::U64s(values) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("batch answered {} values for {} keys", values.len(), chunk.len()),
                    ))
                }
                other => return Err(bad_reply(other)),
            }
        }
        Ok(out)
    }

    /// Turn this connection into a replication feed starting at
    /// `from_seq`, returning the raw socket (v3). The caller reads
    /// `REPL_OP`/`REPL_HEARTBEAT` frames and writes `REPL_ACK`s with the
    /// codec; the request/response discipline no longer applies.
    pub fn subscribe(self, from_seq: u64) -> io::Result<TcpStream> {
        self.subscribe_as(from_seq, 0)
    }

    /// [`Client::subscribe`], identifying the subscriber by its cluster
    /// `node_id` (v6) so the primary labels the peer `{node}@{addr}` in
    /// `CLUSTER_STATUS`. Pass 0 to stay anonymous (the v5 wire form).
    pub fn subscribe_as(mut self, from_seq: u64, node_id: u64) -> io::Result<TcpStream> {
        write_frame(&mut self.stream, &Request::ReplSubscribe { from_seq, node_id }.encode())?;
        Ok(self.stream)
    }

    /// Ask the server to drain and stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Ok { .. } => Ok(()),
            other => Err(bad_reply(other)),
        }
    }
}
