//! The epoll reactor: one thread owns every client socket.
//!
//! Each connection is a sans-IO [`Connection`] state machine plus a
//! non-blocking `TcpStream`; the reactor shuttles bytes between the two
//! and dispatches decoded requests:
//!
//! * **inline** — inserts (admission control is `try_send`-first, so the
//!   reactor never waits behind an un-admitted write), HELLO, cluster map
//!   ops, SHUTDOWN;
//! * **native** — the per-key queries go to the shard queues with a
//!   completion sink; the worker posts a [`Completion`] and wakes the
//!   reactor, which merges multi-shard answers exactly like the old
//!   blocking gather (f64 sums in shard order);
//! * **offloaded** — snapshots, stats, bootstrap cuts, and cluster
//!   scatter-gathers run on a small offload pool so their blocking
//!   rendezvous never stalls the event loop;
//! * **detached** — `REPL_SUBSCRIBE` hands the socket (re-blocking, plus
//!   any over-read bytes) to a dedicated feed thread.
//!
//! The reactor dispatches at most **one request per connection at a
//! time** — parsing pauses while an answer is in flight — which preserves
//! the thread-per-connection tier's FIFO request/response order per
//! connection. Pipelined frames simply wait in the connection's input
//! buffer.
//!
//! Sockets are registered edge-triggered (`EPOLLET`); the listener and
//! the waker are level-triggered and fully drained on every wakeup.
//! Connection slots live in a slab whose epoll token packs
//! `generation << 32 | index`, so events and completions for a slot that
//! was freed and reused are recognized as stale and dropped. The same
//! goes for a per-connection *request* token: a shed multi-shard gather
//! leaves already-enqueued jobs behind, and their late completions must
//! not be mistaken for the answer to a newer request.

use crate::conn::{Connection, Event};
use crate::protocol::{Request, Response};
use crate::server::{
    batch_op_check, partition_batch, serve_feed, shutting_down, ConnGuard, Shared,
};
use crate::sys::{
    raw_fd, Epoll, EpollEvent, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::worker::{Answer, Completion, Job, QuerySink};
use she_core::convert::usize_of;
use she_metrics::ServeCounters;
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, Sender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Epoll token of the listening socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Epoll token of the waker's read half.
const WAKER_TOKEN: u64 = u64::MAX - 1;
/// Threads in the offload pool (blocking ops: snapshots, scatter legs).
const OFFLOAD_THREADS: usize = 4;
/// Sweep cadence for deadline eviction and feed-thread reaping, in ms;
/// also the `epoll_wait` timeout, so a quiet reactor still sweeps.
const SWEEP_MS: u64 = 100;
/// Most frames a single vectored write gathers.
const WRITE_BATCH: usize = 64;

/// A blocking request shipped to the offload pool; the answer comes back
/// through the completion queue as [`Answer::Resp`].
struct OffloadJob {
    slot: u32,
    gen: u32,
    token: u64,
    req: Request,
}

/// What a connection is waiting for.
enum Pending {
    /// Nothing in flight; the reactor may parse its next frame.
    Idle,
    /// One answer outstanding (single-shard query or offloaded op).
    Single,
    /// A multi-shard gather in flight.
    Gather { parts: Vec<Option<Answer>>, remaining: usize, kind: GatherKind },
}

/// How a finished gather's parts merge into one response.
#[derive(Clone, Copy)]
enum GatherKind {
    /// Cardinality: sum the per-shard f64s in shard order.
    CardSum,
    /// Similarity: sum in shard order, divide by shard count.
    SimAvg,
    /// Batch point query over `n` keys: scatter values back by position.
    Batch { n: usize },
}

/// One served connection.
struct ConnState {
    stream: TcpStream,
    conn: Connection,
    /// Releases the connection-cap reservation on drop.
    #[allow(dead_code)]
    guard: ConnGuard,
    pending: Pending,
    /// Request counter; bumped at every dispatch. Completions carrying an
    /// older token are stale and dropped.
    token: u64,
    /// Saw a read-readiness edge not yet drained to `WouldBlock`.
    readable: bool,
    /// First `WouldBlock` on the write side since the last progress;
    /// cleared whenever a write advances. Drives write-stall eviction.
    stall_since: Option<u64>,
    /// Already queued for this round's pump.
    dirty: bool,
}

/// One slab slot. `gen` increments when the slot is freed, invalidating
/// any epoll events or completions still referring to the old tenant.
struct Slot {
    gen: u32,
    conn: Option<ConnState>,
}

/// What to do with a connection after pumping it.
enum Disp {
    Keep,
    Close,
    Detach { from_seq: u64, node_id: u64 },
}

/// Dispatch outcome for one request.
enum Ctl {
    Continue,
    Detach { from_seq: u64, node_id: u64 },
}

/// Spawn the reactor thread and its offload pool.
pub(crate) fn spawn_reactor(
    listener: TcpListener,
    waker_rx: UnixStream,
    shared: Arc<Shared>,
) -> io::Result<(JoinHandle<()>, Vec<JoinHandle<()>>)> {
    let epoll = Epoll::new()?;
    epoll.add(raw_fd(&listener), EPOLLIN, LISTENER_TOKEN)?;
    epoll.add(raw_fd(&waker_rx), EPOLLIN, WAKER_TOKEN)?;
    let (comp_tx, comp_rx) = channel();

    // Each offload thread owns its receiver outright (round-robin fan-out
    // instead of a shared locked queue). The senders live only in the
    // reactor: when the reactor exits and drops them, the pool drains and
    // exits, releasing its `Shared` handles so the workers can follow.
    let mut offload_txs = Vec::with_capacity(OFFLOAD_THREADS);
    let mut offload = Vec::with_capacity(OFFLOAD_THREADS);
    for i in 0..OFFLOAD_THREADS {
        let (tx, rx) = channel::<OffloadJob>();
        offload_txs.push(tx);
        let shared = Arc::clone(&shared);
        let comp_tx = comp_tx.clone();
        offload.push(std::thread::Builder::new().name(format!("she-offload-{i}")).spawn(
            move || {
                // audit:allow(blocking): this closure runs on the offload worker thread, not the reactor — parking on the queue is its whole job
                while let Ok(job) = rx.recv() {
                    let resp = shared.handle(job.req);
                    let done = Completion {
                        slot: job.slot,
                        gen: job.gen,
                        token: job.token,
                        shard: 0,
                        answer: Answer::Resp(resp),
                    };
                    if comp_tx.send(done).is_err() {
                        break;
                    }
                    shared.waker.wake();
                }
            },
        )?);
    }

    let reactor = Reactor {
        shared,
        epoll,
        listener: Some(listener),
        waker_rx,
        comp_tx,
        comp_rx,
        offload_txs,
        next_offload: 0,
        slots: Vec::new(),
        free: Vec::new(),
        feeds: Vec::new(),
        scratch: vec![0u8; 64 * 1024],
        dirty: Vec::new(),
        epoch: Instant::now(),
        last_sweep: 0,
    };
    let handle = std::thread::Builder::new().name("she-reactor".to_string()).spawn(move || {
        reactor.run();
    })?;
    Ok((handle, offload))
}

struct Reactor {
    shared: Arc<Shared>,
    epoll: Epoll,
    /// Dropped the moment shutdown starts, so new connects are refused
    /// immediately even while in-flight answers grace-flush.
    listener: Option<TcpListener>,
    waker_rx: UnixStream,
    comp_tx: Sender<Completion>,
    comp_rx: Receiver<Completion>,
    offload_txs: Vec<Sender<OffloadJob>>,
    next_offload: usize,
    slots: Vec<Slot>,
    free: Vec<u32>,
    feeds: Vec<JoinHandle<()>>,
    scratch: Vec<u8>,
    /// Connections touched this round (events or completions), deduped by
    /// the per-connection `dirty` flag.
    dirty: Vec<u32>,
    epoch: Instant,
    last_sweep: u64,
}

impl Reactor {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn run(mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; 256];
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let timeout = i32::try_from(SWEEP_MS).unwrap_or(100);
            let n = self.epoll.wait(&mut events, timeout).unwrap_or(0);
            for ev in events.iter().take(n) {
                // Copy out of the (possibly packed) event before use.
                let data = ev.data;
                let flags = ev.events;
                match data {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.drain_waker(),
                    token => self.note_conn_event(token, flags),
                }
            }
            self.drain_completions();
            self.pump_dirty();
            self.sweep();
        }
        self.shutdown_sequence();
    }

    // ---- readiness plumbing -------------------------------------------

    /// Accept until the listener would block, admitting or refusing.
    fn accept_ready(&mut self) {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => self.admit_conn(stream),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Reserve a cap slot, or refuse with one `OVERLOADED` frame.
    fn admit_conn(&mut self, stream: TcpStream) {
        if self.shared.conns.fetch_add(1, Ordering::SeqCst) >= self.shared.max_connections {
            self.shared.conns.fetch_sub(1, Ordering::SeqCst);
            ServeCounters::bump(&self.shared.counters.refused_conns);
            refuse(stream, self.shared.retry_after_ms);
            return;
        }
        let guard = ConnGuard(Arc::clone(&self.shared));
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return; // guard drop releases the reservation
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let idx = u32::try_from(self.slots.len()).unwrap_or(u32::MAX);
                self.slots.push(Slot { gen: 0, conn: None });
                idx
            }
        };
        let slot_i = usize_of(u64::from(idx));
        let gen = self.slots[slot_i].gen;
        let token = (u64::from(gen) << 32) | u64::from(idx);
        let interest = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
        if self.epoll.add(raw_fd(&stream), interest, token).is_err() {
            // audit:allow(growth): free list never exceeds the slab, itself capped by max_connections
            self.free.push(idx);
            return;
        }
        self.slots[slot_i].conn = Some(ConnState {
            stream,
            conn: Connection::new(),
            guard,
            pending: Pending::Idle,
            token: 0,
            // Bytes may already be waiting; under EPOLLET the edge fired
            // (or will fire) but the first pump must read regardless.
            readable: true,
            stall_since: None,
            dirty: false,
        });
        self.mark_dirty(idx);
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.waker_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => {}
                Err(_) => return,
            }
        }
    }

    /// Record readiness for a connection token (stale tokens ignored).
    fn note_conn_event(&mut self, token: u64, flags: u32) {
        let idx = u32::try_from(token & 0xFFFF_FFFF).unwrap_or(u32::MAX);
        let gen = u32::try_from(token >> 32).unwrap_or(u32::MAX);
        let Some(slot) = self.slots.get_mut(usize_of(u64::from(idx))) else { return };
        if slot.gen != gen {
            return;
        }
        let Some(cs) = slot.conn.as_mut() else { return };
        if flags & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0 {
            cs.readable = true;
        }
        // EPOLLOUT just means "try flushing again" — pump does that.
        self.mark_dirty(idx);
    }

    fn mark_dirty(&mut self, idx: u32) {
        if let Some(slot) = self.slots.get_mut(usize_of(u64::from(idx))) {
            if let Some(cs) = slot.conn.as_mut() {
                if !cs.dirty {
                    cs.dirty = true;
                    // audit:allow(growth): at most one entry per live connection per round; cleared every round
                    self.dirty.push(idx);
                }
            }
        }
    }

    // ---- completions ---------------------------------------------------

    fn drain_completions(&mut self) {
        while let Ok(c) = self.comp_rx.try_recv() {
            self.apply_completion(c);
        }
    }

    fn apply_completion(&mut self, c: Completion) {
        let slot_i = usize_of(u64::from(c.slot));
        let Some(slot) = self.slots.get_mut(slot_i) else { return };
        if slot.gen != c.gen {
            return; // the connection this answered is gone
        }
        let Some(cs) = slot.conn.as_mut() else { return };
        if cs.token != c.token {
            return; // stale answer to a superseded request
        }
        match std::mem::replace(&mut cs.pending, Pending::Idle) {
            // A shed gather's stragglers land here: token still matches,
            // but nothing is in flight any more.
            Pending::Idle => return,
            Pending::Single => {
                cs.conn.push_response(&single_response(c.answer));
            }
            Pending::Gather { mut parts, mut remaining, kind } => {
                if let Some(p) = parts.get_mut(c.shard) {
                    if p.is_none() {
                        *p = Some(c.answer);
                        remaining -= 1;
                    }
                }
                if remaining == 0 {
                    cs.conn.push_response(&finish_gather(parts, kind));
                } else {
                    cs.pending = Pending::Gather { parts, remaining, kind };
                    return;
                }
            }
        }
        self.mark_dirty(c.slot);
    }

    // ---- the pump ------------------------------------------------------

    fn pump_dirty(&mut self) {
        let mut i = 0;
        // `pump` can re-mark peers dirty (it never re-marks itself); the
        // index walk picks up appends within the same round.
        while i < self.dirty.len() {
            let idx = self.dirty[i];
            i += 1;
            self.pump(idx);
        }
        self.dirty.clear();
    }

    /// Drive one connection: parse/dispatch buffered frames, flush output,
    /// read more bytes — until it blocks, waits on an answer, or dies.
    fn pump(&mut self, idx: u32) {
        let slot_i = usize_of(u64::from(idx));
        let Some(slot) = self.slots.get_mut(slot_i) else { return };
        let Some(mut cs) = slot.conn.take() else { return };
        cs.dirty = false;
        let gen = slot.gen;
        match self.drive(&mut cs, idx, gen) {
            Disp::Keep => {
                if let Some(slot) = self.slots.get_mut(slot_i) {
                    slot.conn = Some(cs);
                }
            }
            Disp::Close => self.release(slot_i, cs),
            Disp::Detach { from_seq, node_id } => self.detach(slot_i, cs, from_seq, node_id),
        }
    }

    fn drive(&mut self, cs: &mut ConnState, idx: u32, gen: u32) -> Disp {
        loop {
            // Parse while nothing is in flight (one request at a time).
            while matches!(cs.pending, Pending::Idle) {
                match cs.conn.poll() {
                    Event::Request(req) => match self.dispatch(cs, idx, gen, req) {
                        Ctl::Continue => {}
                        Ctl::Detach { from_seq, node_id } => {
                            return Disp::Detach { from_seq, node_id }
                        }
                    },
                    Event::Bad(e) => cs.conn.push_response(&Response::Err(e.to_string())),
                    Event::NeedMore => break,
                    Event::Fatal => return Disp::Close,
                }
            }
            let now = self.now_ms();
            if !flush_out(cs, now) {
                return Disp::Close;
            }
            if !cs.readable || !matches!(cs.pending, Pending::Idle) {
                return Disp::Keep;
            }
            match (&cs.stream).read(&mut self.scratch) {
                Ok(0) => return Disp::Close,
                Ok(n) => cs.conn.feed(&self.scratch[..n], now),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    cs.readable = false;
                    return Disp::Keep;
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Disp::Close,
            }
        }
    }

    fn dispatch(&mut self, cs: &mut ConnState, idx: u32, gen: u32, req: Request) -> Ctl {
        cs.token = cs.token.wrapping_add(1);
        match req {
            Request::QueryMember { key } => {
                let shard = self.shared.engine.shard_of(key);
                self.native_single(cs, idx, gen, shard, |sink| Job::Member { key, sink });
            }
            Request::QueryFreq { key } => {
                let shard = self.shared.engine.shard_of(key);
                self.native_single(cs, idx, gen, shard, |sink| Job::Freq { key, sink });
            }
            Request::QueryCard => self.native_all(cs, idx, gen, GatherKind::CardSum),
            Request::QuerySim => self.native_all(cs, idx, gen, GatherKind::SimAvg),
            Request::QueryBatch { op, keys } => self.native_batch(cs, idx, gen, op, keys),
            Request::ReplSubscribe { from_seq, node_id } => {
                return Ctl::Detach { from_seq, node_id }
            }
            req @ (Request::Stats
            | Request::Snapshot { .. }
            | Request::SnapshotAll
            | Request::Restore { .. }
            | Request::ReplBootstrap
            | Request::ClusterQuery { .. }
            | Request::ClusterQueryBatch { .. }) => self.offload(cs, idx, gen, req),
            // Everything else is cheap and lock-light: inserts (try_send
            // admission first — BUSY without blocking), HELLO, cluster map
            // ops, SHUTDOWN (flips the flag; the loop notices this round).
            // `handle_inline` is the statically-audited reactor-safe
            // subset; a blocking request landing there answers ERR.
            req => {
                let resp = self.shared.handle_inline(req);
                cs.conn.push_response(&resp);
            }
        }
        Ctl::Continue
    }

    fn reactor_sink(&self, slot: u32, gen: u32, token: u64, shard: usize) -> QuerySink {
        QuerySink::Reactor {
            tx: self.comp_tx.clone(),
            waker: Arc::clone(&self.shared.waker),
            slot,
            gen,
            token,
            shard,
        }
    }

    /// Single-shard read query: `try_send` or shed.
    fn native_single(
        &mut self,
        cs: &mut ConnState,
        idx: u32,
        gen: u32,
        shard: usize,
        make: impl FnOnce(QuerySink) -> Job,
    ) {
        let sink = self.reactor_sink(idx, gen, cs.token, shard);
        match self.shared.txs[shard].try_send(make(sink)) {
            Ok(()) => cs.pending = Pending::Single,
            Err(TrySendError::Full(_)) => {
                let resp = self.shared.shed();
                cs.conn.push_response(&resp);
            }
            Err(TrySendError::Disconnected(_)) => cs.conn.push_response(&shutting_down()),
        }
    }

    /// All-shard gather (cardinality / similarity). Any full queue sheds
    /// the whole query; completions already in flight die on the token.
    fn native_all(&mut self, cs: &mut ConnState, idx: u32, gen: u32, kind: GatherKind) {
        let shards = self.shared.txs.len();
        for shard in 0..shards {
            let sink = self.reactor_sink(idx, gen, cs.token, shard);
            let job = match kind {
                GatherKind::CardSum => Job::Card { sink },
                GatherKind::SimAvg | GatherKind::Batch { .. } => Job::Sim { sink },
            };
            match self.shared.txs[shard].try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    let resp = self.shared.shed();
                    cs.conn.push_response(&resp);
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    cs.conn.push_response(&shutting_down());
                    return;
                }
            }
        }
        cs.pending = Pending::Gather { parts: vec![None; shards], remaining: shards, kind };
    }

    /// Batch point query: split keys by owning shard, gather slices.
    fn native_batch(&mut self, cs: &mut ConnState, idx: u32, gen: u32, op: u8, keys: Vec<u64>) {
        if let Err(resp) = batch_op_check(op) {
            cs.conn.push_response(&resp);
            return;
        }
        if keys.is_empty() {
            cs.conn.push_response(&Response::U64s(Vec::new()));
            return;
        }
        let n = keys.len();
        let shards = self.shared.txs.len();
        let mut remaining = 0;
        for (shard, (shard_keys, pos)) in
            partition_batch(&self.shared.engine, &keys, shards).into_iter().enumerate()
        {
            if shard_keys.is_empty() {
                continue;
            }
            let sink = self.reactor_sink(idx, gen, cs.token, shard);
            let job = Job::QueryBatch { op, keys: shard_keys, pos, sink };
            match self.shared.txs[shard].try_send(job) {
                Ok(()) => remaining += 1,
                Err(TrySendError::Full(_)) => {
                    let resp = self.shared.shed();
                    cs.conn.push_response(&resp);
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    cs.conn.push_response(&shutting_down());
                    return;
                }
            }
        }
        cs.pending =
            Pending::Gather { parts: vec![None; shards], remaining, kind: GatherKind::Batch { n } };
    }

    /// Ship a blocking op to the offload pool (round-robin).
    fn offload(&mut self, cs: &mut ConnState, idx: u32, gen: u32, req: Request) {
        let job = OffloadJob { slot: idx, gen, token: cs.token, req };
        let k = self.next_offload % self.offload_txs.len().max(1);
        self.next_offload = self.next_offload.wrapping_add(1);
        match self.offload_txs.get(k) {
            Some(tx) if tx.send(job).is_ok() => cs.pending = Pending::Single,
            _ => cs.conn.push_response(&shutting_down()),
        }
    }

    // ---- lifecycle -----------------------------------------------------

    /// Free a slot: deregister, bump the generation, return to the free
    /// list. Dropping `cs` closes the socket and releases the cap slot.
    fn release(&mut self, slot_i: usize, cs: ConnState) {
        let _ = self.epoll.del(raw_fd(&cs.stream));
        if let Some(slot) = self.slots.get_mut(slot_i) {
            slot.gen = slot.gen.wrapping_add(1);
            slot.conn = None;
        }
        // audit:allow(growth): free list never exceeds the slab, itself capped by max_connections
        self.free.push(u32::try_from(slot_i).unwrap_or(u32::MAX));
        drop(cs);
    }

    /// `REPL_SUBSCRIBE`: pull the socket out of the reactor, re-block it,
    /// flush anything still queued, and hand it (plus over-read bytes) to
    /// a dedicated feed thread.
    fn detach(&mut self, slot_i: usize, mut cs: ConnState, from_seq: u64, node_id: u64) {
        let _ = self.epoll.del(raw_fd(&cs.stream));
        if let Some(slot) = self.slots.get_mut(slot_i) {
            slot.gen = slot.gen.wrapping_add(1);
            slot.conn = None;
        }
        // audit:allow(growth): free list never exceeds the slab, itself capped by max_connections
        self.free.push(u32::try_from(slot_i).unwrap_or(u32::MAX));
        if cs.stream.set_nonblocking(false).is_err() {
            return;
        }
        if cs.conn.has_output() {
            // audit:allow(blocking): one-time bounded flush while handing a feed socket off the reactor
            let _ = cs.stream.set_write_timeout(self.shared.client_deadline);
            let queued: Vec<u8> = cs.conn.out_slices().flatten().copied().collect();
            // audit:allow(blocking): see above — the socket leaves the reactor right after
            if (&cs.stream).write_all(&queued).is_err() {
                return;
            }
            // audit:allow(blocking): restoring the no-timeout default for the feed thread taking this socket over
            let _ = cs.stream.set_write_timeout(None);
        }
        let leftover = cs.conn.take_input();
        let shared = Arc::clone(&self.shared);
        let ConnState { stream, guard, .. } = cs;
        let spawned = std::thread::Builder::new().name("she-feed".to_string()).spawn(move || {
            let _guard = guard;
            serve_feed(stream, leftover, &shared, from_seq, node_id);
        });
        if let Ok(h) = spawned {
            // audit:allow(growth): one handle per live replication feed; reaped in sweep()
            self.feeds.push(h);
        }
    }

    /// Periodic housekeeping: evict deadline-busting connections, reap
    /// finished feed threads.
    fn sweep(&mut self) {
        let now = self.now_ms();
        if now.saturating_sub(self.last_sweep) < SWEEP_MS {
            return;
        }
        self.last_sweep = now;
        let mut i = 0;
        while i < self.feeds.len() {
            if self.feeds[i].is_finished() {
                let _ = self.feeds.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        let Some(deadline) = self.shared.client_deadline else { return };
        let limit = u64::try_from(deadline.as_millis()).unwrap_or(u64::MAX);
        let mut evict = Vec::new();
        for (slot_i, slot) in self.slots.iter().enumerate() {
            let Some(cs) = &slot.conn else { continue };
            let read_stall = cs.conn.stalled(now, limit);
            let write_stall = cs.conn.has_output()
                && matches!(cs.stall_since, Some(t0) if now.saturating_sub(t0) >= limit);
            if read_stall || write_stall {
                // audit:allow(growth): bounded by the live connection count
                evict.push(slot_i);
            }
        }
        for slot_i in evict {
            if let Some(cs) = self.slots.get_mut(slot_i).and_then(|s| s.conn.take()) {
                ServeCounters::bump(&self.shared.counters.evicted_conns);
                self.release(slot_i, cs);
            }
        }
    }

    /// Stop accepting immediately, grace-flush in-flight answers, close
    /// everything, join the feed threads.
    fn shutdown_sequence(&mut self) {
        self.listener = None;
        let mut events = [EpollEvent { events: 0, data: 0 }; 64];
        for _ in 0..50 {
            let busy = self.slots.iter().any(|s| {
                s.conn
                    .as_ref()
                    .is_some_and(|cs| !matches!(cs.pending, Pending::Idle) || cs.conn.has_output())
            });
            if !busy {
                break;
            }
            let _ = self.epoll.wait(&mut events, 20);
            self.drain_waker();
            self.drain_completions();
            let now = self.now_ms();
            for slot in &mut self.slots {
                if let Some(cs) = slot.conn.as_mut() {
                    if cs.conn.has_output() {
                        let _ = flush_out(cs, now);
                    }
                }
            }
        }
        for slot_i in 0..self.slots.len() {
            if let Some(cs) = self.slots[slot_i].conn.take() {
                self.release(slot_i, cs);
            }
        }
        // Feed threads watch the shutdown flag between streaming rounds.
        for h in self.feeds.drain(..) {
            let _ = h.join();
        }
    }
}

/// Write as much queued output as the socket accepts, vectored. Returns
/// `false` when the connection is dead. Tracks write-stall onset for the
/// deadline sweeper.
fn flush_out(cs: &mut ConnState, now: u64) -> bool {
    while cs.conn.has_output() {
        let bufs: Vec<IoSlice<'_>> =
            cs.conn.out_slices().take(WRITE_BATCH).map(IoSlice::new).collect();
        match (&cs.stream).write_vectored(&bufs) {
            Ok(0) => return false,
            Ok(n) => {
                drop(bufs);
                cs.conn.advance_out(n);
                cs.stall_since = None;
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                if cs.stall_since.is_none() {
                    cs.stall_since = Some(now);
                }
                return true;
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    cs.stall_since = None;
    true
}

/// Map a worker's answer to the wire response for a single-part query.
fn single_response(answer: Answer) -> Response {
    match answer {
        Answer::Bool(v) => Response::Bool(v),
        Answer::U64(v) => Response::U64(v),
        Answer::F64(v) => Response::F64(v),
        Answer::Resp(resp) => resp,
        Answer::Slots(_) => crate::server::answer_mismatch(),
    }
}

/// Merge a completed gather exactly like the old blocking path: f64 sums
/// in shard index order (bit-for-bit identical merges), batch values
/// scattered back to their request positions.
fn finish_gather(parts: Vec<Option<Answer>>, kind: GatherKind) -> Response {
    match kind {
        GatherKind::CardSum => {
            let mut sum = 0.0f64;
            for a in parts.into_iter().flatten() {
                match a {
                    Answer::F64(v) => sum += v,
                    _ => return crate::server::answer_mismatch(),
                }
            }
            Response::F64(sum)
        }
        GatherKind::SimAvg => {
            let n = parts.len() as f64;
            let mut sum = 0.0f64;
            for a in parts.into_iter().flatten() {
                match a {
                    Answer::F64(v) => sum += v,
                    _ => return crate::server::answer_mismatch(),
                }
            }
            Response::F64(sum / n)
        }
        GatherKind::Batch { n } => {
            let mut out = vec![0u64; n];
            for a in parts.into_iter().flatten() {
                match a {
                    Answer::Slots(slots) => {
                        for (pos, value) in slots {
                            if let Some(o) = out.get_mut(usize_of(u64::from(pos))) {
                                *o = value;
                            }
                        }
                    }
                    _ => return crate::server::answer_mismatch(),
                }
            }
            Response::U64s(out)
        }
    }
}

/// Refuse an over-cap connection: one best-effort `OVERLOADED` frame on
/// the just-accepted socket, then close. The socket goes non-blocking
/// first, so a zero-window client cannot stall the reactor at all; a
/// frame that does not fit the socket buffer in one write is abandoned
/// and the client only sees the close.
fn refuse(stream: TcpStream, retry_after_ms: u32) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let resp = Response::Overloaded { retry_after_ms: retry_after_ms.max(1).saturating_mul(10) };
    let payload = resp.encode();
    let Ok(len) = u32::try_from(payload.len()) else { return };
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&payload);
    let mut stream = stream;
    let _ = stream.write(&frame);
}
