//! Load generator for a running she-server.
//!
//! ```text
//! she-loadgen --addr 127.0.0.1:7487 --items 1000000 --queries 10000 \
//!             [--batch 512] [--open RATE] [--universe N] [--skew S] [--seed K] \
//!             [--verify --window N --shards S --mem BYTES --engine-seed K]
//! ```
//!
//! `--verify` mirrors the stream through an in-process engine sized by
//! the `--window/--shards/--mem/--engine-seed` flags (they must match the
//! server's) and checks every query answer bit-for-bit. Exits non-zero on
//! any mismatch or transport error.

use she_server::{loadgen, EngineConfig, LoadgenConfig, Mode};

fn usage() -> ! {
    eprintln!(
        "usage: she-loadgen --addr HOST:PORT [--items N] [--batch N] [--queries N]\n\
         \x20                 [--open ITEMS_PER_SEC] [--universe N] [--skew F] [--seed N]\n\
         \x20                 [--sim-every N] [--connections N] [--read-from HOST:PORT]\n\
         \x20                 [--read-ratio F] [--zipf F]\n\
         \x20                 [--verify --window N --shards N --mem BYTES --engine-seed N]\n\
         \n\
         --read-ratio F interleaves v5 QUERY_FAST reads at F reads per\n\
         (reads + items) — 0.95 is the canonical 95/5 read-heavy mix —\n\
         with read keys drawn Zipf(--zipf) from the write universe;\n\
         needs a server running with --readpath.\n\
         --read-from sends the interleaved queries to a second address (a\n\
         replica) while inserts go to --addr (the primary); --connections\n\
         fans the workload out over N sockets and merges their latency\n\
         histograms. Neither combines with --verify."
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("she-loadgen: bad or missing value for {flag}");
        usage()
    })
}

fn main() {
    let mut cfg = LoadgenConfig::default();
    let mut verify = false;
    let mut engine = EngineConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => cfg.addr = parse(args.next(), "--addr"),
            "--items" => cfg.items = parse(args.next(), "--items"),
            "--batch" => cfg.batch = parse(args.next(), "--batch"),
            "--queries" => cfg.queries = parse(args.next(), "--queries"),
            "--open" => cfg.mode = Mode::Open { items_per_sec: parse(args.next(), "--open") },
            "--universe" => cfg.universe = parse(args.next(), "--universe"),
            "--skew" => cfg.skew = parse(args.next(), "--skew"),
            "--seed" => cfg.seed = parse(args.next(), "--seed"),
            "--sim-every" => cfg.sim_every = parse(args.next(), "--sim-every"),
            "--connections" => cfg.connections = parse(args.next(), "--connections"),
            "--read-from" => cfg.read_from = Some(parse(args.next(), "--read-from")),
            "--read-ratio" => cfg.read_ratio = parse(args.next(), "--read-ratio"),
            "--zipf" => cfg.read_skew = parse(args.next(), "--zipf"),
            "--verify" => verify = true,
            "--window" => engine.window = parse(args.next(), "--window"),
            "--shards" => engine.shards = parse(args.next(), "--shards"),
            "--mem" => engine.memory_bytes = parse(args.next(), "--mem"),
            "--engine-seed" => engine.seed = parse(args.next(), "--engine-seed"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("she-loadgen: unknown flag {other}");
                usage();
            }
        }
    }
    if verify {
        cfg.verify = Some(engine);
    }

    println!(
        "she-loadgen: {} items (batch {}), {} queries against {}{}",
        cfg.items,
        cfg.batch,
        cfg.queries,
        cfg.addr,
        if verify { " [verify]" } else { "" }
    );
    match loadgen::run(&cfg) {
        Ok(summary) => {
            summary.print();
            if summary.mismatches > 0 {
                eprintln!("she-loadgen: VERIFICATION FAILED ({} mismatches)", summary.mismatches);
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("she-loadgen: {e}");
            std::process::exit(1);
        }
    }
}
