//! Whole-server checkpoints: every shard's snapshot in one frame, plus
//! the rebalancing logic that rebuilds the shard set at a different
//! `--shards` count by merging — never by replaying the stream.
//!
//! ## Rebalancing
//!
//! Keys route by `reduce_range(h, S)`, which is monotone in the hash `h`:
//! shard `j` of an `S`-shard engine owns the contiguous hash range
//! `[⌈j·2⁶⁴/S⌉, ⌈(j+1)·2⁶⁴/S⌉)`. Because both the old and the new layout
//! cut the same `[0, 2⁶⁴)` line into contiguous ranges, every new shard's
//! range is covered by the (one or more) old shards it overlaps, for
//! *any* pair of shard counts — so each new shard is the cell-wise merge
//! of exactly its overlapping old shards. The merge is exact for the
//! OR-mergeable bit sketches (BF/BM), a one-sided cell-wise max for CM,
//! and the register max/min for HLL-style and MinHash cells. Where an old
//! shard's range spills past the new shard's boundary (non-divisible
//! counts, or a split), the foreign keys it carries in only add one-sided
//! noise — extra bits / higher counters — preserving each structure's
//! no-false-negative / no-underestimate guarantee.
//!
//! Per-shard sizing (`window/S`, `memory/S`) must stay constant for the
//! nested structure configs to line up, so the rebalanced engine's
//! *global* window and memory scale with the shard count: going from 4
//! shards to 2 halves the global window and memory. Per-key queries
//! (member/freq) are unaffected; whole-engine estimates (card/sim) keep
//! their per-shard semantics.

use crate::engine::{EngineConfig, ShardEngine};
use she_core::frame::{self, Frame, FrameWriter, Reader};
use she_core::SnapshotError;

/// A whole-server checkpoint: the engine sizing plus one `SHARD` frame
/// per shard, in shard order.
#[derive(Debug)]
pub struct Checkpoint {
    /// The sizing the checkpointed server ran with.
    pub cfg: EngineConfig,
    /// One [`ShardEngine::snapshot`] frame per shard, in shard order.
    pub shards: Vec<Vec<u8>>,
}

impl Checkpoint {
    /// Serialize into a `CHECKPOINT` frame.
    pub fn encode(&self) -> Vec<u8> {
        assert_eq!(self.shards.len(), self.cfg.shards, "shard count mismatch");
        let mut w = FrameWriter::new(frame::kind::CHECKPOINT);
        w.section(frame::tag::CONFIG, &self.cfg.encode());
        for shard in &self.shards {
            w.section(frame::tag::SHARD, shard);
        }
        w.finish()
    }

    /// Parse a `CHECKPOINT` frame.
    pub fn decode(buf: &[u8]) -> Result<Self, SnapshotError> {
        let f = Frame::parse(buf)?;
        if f.kind != frame::kind::CHECKPOINT {
            return Err(SnapshotError::WrongKind {
                expected: frame::kind::CHECKPOINT,
                found: f.kind,
            });
        }
        let sec = f
            .section(frame::tag::CONFIG)
            .ok_or(SnapshotError::MissingSection { tag: frame::tag::CONFIG })?;
        let mut r = Reader::new(sec);
        let cfg = EngineConfig::decode(&mut r)?;
        r.finish().map_err(SnapshotError::Frame)?;
        let shards: Vec<Vec<u8>> = f.sections(frame::tag::SHARD).map(|s| s.to_vec()).collect();
        if shards.len() != cfg.shards {
            return Err(SnapshotError::ConfigMismatch { field: "shard count" });
        }
        Ok(Self { cfg, shards })
    }

    /// The config a `new_shards`-shard engine must use for its per-shard
    /// structures to coincide with this checkpoint's (same per-shard
    /// window and memory — the global totals scale with the shard count).
    fn rebalanced_config(&self, new_shards: usize) -> EngineConfig {
        let old = self.cfg;
        EngineConfig {
            window: (old.window / old.shards as u64).max(1) * new_shards as u64,
            shards: new_shards,
            memory_bytes: (old.memory_bytes / old.shards).max(64) * new_shards,
            seed: old.seed,
        }
    }

    /// Build the shard engines of a `new_shards`-shard server from this
    /// checkpoint.
    ///
    /// * `new_shards == cfg.shards`: exact restore, bit-for-bit.
    /// * Otherwise — *any* nonzero count — each new shard is the
    ///   cell-wise merge of every old shard whose hash range overlaps its
    ///   own (contiguous, thanks to the monotone router). For divisible
    ///   counts this degenerates to the exact union/split of PR 2; for
    ///   non-divisible counts boundary shards carry one-sided extra
    ///   state, never less.
    pub fn build_engines(
        &self,
        new_shards: usize,
    ) -> Result<(EngineConfig, Vec<ShardEngine>), SnapshotError> {
        if new_shards == self.cfg.shards {
            let mut engines = Vec::with_capacity(new_shards);
            for (i, blob) in self.shards.iter().enumerate() {
                let mut e = ShardEngine::new(&self.cfg, i);
                e.restore(blob)?;
                engines.push(e);
            }
            return Ok((self.cfg, engines));
        }

        let old_shards = self.cfg.shards;
        if new_shards == 0 {
            return Err(SnapshotError::ConfigMismatch { field: "shards (must be nonzero)" });
        }
        // Shard i of n owns hashes [lo(i, n), lo(i+1, n)): the preimage of
        // `reduce_range(h, n) == i`, with lo the ceiling division below.
        let lo = |i: usize, n: usize| ((i as u128) << 64).div_ceil(n as u128);
        let cfg = self.rebalanced_config(new_shards);
        let mut engines = Vec::with_capacity(new_shards);
        for j in 0..new_shards {
            let mut e = ShardEngine::new(&cfg, j);
            let (new_lo, new_hi) = (lo(j, new_shards), lo(j + 1, new_shards));
            for (i, blob) in self.shards.iter().enumerate() {
                let (old_lo, old_hi) = (lo(i, old_shards), lo(i + 1, old_shards));
                if old_lo < new_hi && new_lo < old_hi {
                    e.merge(blob)?;
                }
            }
            // audit:allow(growth): exactly one engine per destination shard
            engines.push(e);
        }
        Ok((cfg, engines))
    }
}
