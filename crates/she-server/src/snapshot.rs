//! Whole-server checkpoints: every shard's snapshot in one frame, plus
//! the rebalancing logic that rebuilds the shard set at a different
//! `--shards` count by merging — never by replaying the stream.
//!
//! ## Rebalancing
//!
//! Keys route by `reduce_range(h, S)`, which is monotone in the hash `h`:
//! shard `j` of an `S`-shard engine owns the contiguous hash range
//! `[j·2⁶⁴/S, (j+1)·2⁶⁴/S)`. When the old and new shard counts divide one
//! another, every new shard's range is exactly a union of old ranges (or
//! a sub-range of one old shard), so the new shard's state is the
//! cell-wise merge of the old shards that overlap it — exact for the
//! OR-mergeable bit sketches (BF/BM), a one-sided cell-wise max for CM,
//! and the register max/min for HLL-style and MinHash cells.
//!
//! Per-shard sizing (`window/S`, `memory/S`) must stay constant for the
//! nested structure configs to line up, so the rebalanced engine's
//! *global* window and memory scale with the shard count: going from 4
//! shards to 2 halves the global window and memory. Per-key queries
//! (member/freq) are unaffected; whole-engine estimates (card/sim) keep
//! their per-shard semantics. When a shard's range *splits*, every new
//! sub-shard inherits the full old state: foreign keys only add one-sided
//! noise (extra bits / higher counters), preserving each structure's
//! no-false-negative / no-underestimate guarantee.

use crate::engine::{EngineConfig, ShardEngine};
use she_core::frame::{self, Frame, FrameWriter, Reader};
use she_core::SnapshotError;

/// A whole-server checkpoint: the engine sizing plus one `SHARD` frame
/// per shard, in shard order.
#[derive(Debug)]
pub struct Checkpoint {
    /// The sizing the checkpointed server ran with.
    pub cfg: EngineConfig,
    /// One [`ShardEngine::snapshot`] frame per shard, in shard order.
    pub shards: Vec<Vec<u8>>,
}

impl Checkpoint {
    /// Serialize into a `CHECKPOINT` frame.
    pub fn encode(&self) -> Vec<u8> {
        assert_eq!(self.shards.len(), self.cfg.shards, "shard count mismatch");
        let mut w = FrameWriter::new(frame::kind::CHECKPOINT);
        w.section(frame::tag::CONFIG, &self.cfg.encode());
        for shard in &self.shards {
            w.section(frame::tag::SHARD, shard);
        }
        w.finish()
    }

    /// Parse a `CHECKPOINT` frame.
    pub fn decode(buf: &[u8]) -> Result<Self, SnapshotError> {
        let f = Frame::parse(buf)?;
        if f.kind != frame::kind::CHECKPOINT {
            return Err(SnapshotError::WrongKind {
                expected: frame::kind::CHECKPOINT,
                found: f.kind,
            });
        }
        let sec = f
            .section(frame::tag::CONFIG)
            .ok_or(SnapshotError::MissingSection { tag: frame::tag::CONFIG })?;
        let mut r = Reader::new(sec);
        let cfg = EngineConfig::decode(&mut r)?;
        r.finish().map_err(SnapshotError::Frame)?;
        let shards: Vec<Vec<u8>> = f.sections(frame::tag::SHARD).map(|s| s.to_vec()).collect();
        if shards.len() != cfg.shards {
            return Err(SnapshotError::ConfigMismatch { field: "shard count" });
        }
        Ok(Self { cfg, shards })
    }

    /// The config a `new_shards`-shard engine must use for its per-shard
    /// structures to coincide with this checkpoint's (same per-shard
    /// window and memory — the global totals scale with the shard count).
    fn rebalanced_config(&self, new_shards: usize) -> EngineConfig {
        let old = self.cfg;
        EngineConfig {
            window: (old.window / old.shards as u64).max(1) * new_shards as u64,
            shards: new_shards,
            memory_bytes: (old.memory_bytes / old.shards).max(64) * new_shards,
            seed: old.seed,
        }
    }

    /// Build the shard engines of a `new_shards`-shard server from this
    /// checkpoint.
    ///
    /// * `new_shards == cfg.shards`: exact restore, bit-for-bit.
    /// * Otherwise one count must divide the other; each new shard is the
    ///   cell-wise merge of every old shard whose hash range overlaps its
    ///   own (contiguous, thanks to the monotone router).
    pub fn build_engines(
        &self,
        new_shards: usize,
    ) -> Result<(EngineConfig, Vec<ShardEngine>), SnapshotError> {
        if new_shards == self.cfg.shards {
            let mut engines = Vec::with_capacity(new_shards);
            for (i, blob) in self.shards.iter().enumerate() {
                let mut e = ShardEngine::new(&self.cfg, i);
                e.restore(blob)?;
                engines.push(e);
            }
            return Ok((self.cfg, engines));
        }

        let old_shards = self.cfg.shards;
        if new_shards == 0
            || (!old_shards.is_multiple_of(new_shards) && !new_shards.is_multiple_of(old_shards))
        {
            return Err(SnapshotError::ConfigMismatch { field: "shards (must divide evenly)" });
        }
        let cfg = self.rebalanced_config(new_shards);
        let mut engines = Vec::with_capacity(new_shards);
        for j in 0..new_shards {
            let mut e = ShardEngine::new(&cfg, j);
            if old_shards > new_shards {
                // Merge: new shard j absorbs old shards [j·r, (j+1)·r).
                let r = old_shards / new_shards;
                for blob in &self.shards[j * r..(j + 1) * r] {
                    e.merge(blob)?;
                }
            } else {
                // Split: new shard j inherits its parent's full state; the
                // keys now routed elsewhere age out of the window on their
                // own and meanwhile only add one-sided noise.
                let r = new_shards / old_shards;
                e.merge(&self.shards[j / r])?;
            }
            engines.push(e);
        }
        Ok((cfg, engines))
    }
}
