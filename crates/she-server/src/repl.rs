//! Primary-side replication state: the bounded op log, its record and
//! bootstrap codecs, and the registry of subscribed replicas.
//!
//! ## The op log
//!
//! Every accepted insert becomes one [`Record`] with a dense sequence
//! number. Appends happen *atomically with the enqueue* onto the shard
//! FIFOs (both under the log mutex), which gives the one invariant the
//! whole design rests on: **the log order is the apply order**. A
//! bootstrap cut ([`ReplLog::cut`]) reads the head and enqueues the
//! snapshot jobs under the same lock, so the returned checkpoint reflects
//! exactly the records with `seq <= cut` — a replica that restores the
//! checkpoint and then tails from `cut + 1` replays the identical
//! per-shard insert order the primary applied, making the two engines
//! bit-for-bit equal (the property `she mirror-check` asserts).
//!
//! The log is bounded (`cap` records): old records fall off the floor and
//! a subscriber that asks for one gets `LOG_TRUNCATED` and re-bootstraps.
//! Only connection handlers take the log lock — shard workers never do —
//! so enqueue-under-lock cannot deadlock with a full queue: workers keep
//! draining regardless.

use crate::protocol::PeerStatus;
use she_core::convert::{le_u64s, usize_of};
use she_core::frame::{self, Frame, FrameWriter, Reader};
use she_core::{OrderedMutex, SnapshotError};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar};
use std::time::Duration;

/// One replicated insert: the keys of a single `INSERT`/`INSERT_BATCH`
/// request, in arrival order, tagged with the stream they fed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Dense sequence number (1-based; 0 means "nothing yet").
    pub seq: u64,
    /// Stream tag (0 = A, 1 = B).
    pub stream: u8,
    /// Inserted keys, in arrival order.
    pub keys: Vec<u64>,
}

impl Record {
    /// Serialize into an `OPLOG` frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(frame::kind::OPLOG);
        let mut meta = Vec::with_capacity(9);
        meta.extend_from_slice(&self.seq.to_le_bytes());
        meta.push(self.stream);
        w.section(frame::tag::META, &meta);
        let mut raw = Vec::with_capacity(8 * self.keys.len());
        for k in &self.keys {
            raw.extend_from_slice(&k.to_le_bytes());
        }
        w.section(frame::tag::KEYS, &raw);
        w.finish()
    }

    /// Parse an `OPLOG` frame.
    pub fn decode(buf: &[u8]) -> Result<Record, SnapshotError> {
        let f = Frame::parse(buf)?;
        if f.kind != frame::kind::OPLOG {
            return Err(SnapshotError::WrongKind { expected: frame::kind::OPLOG, found: f.kind });
        }
        let meta = f
            .section(frame::tag::META)
            .ok_or(SnapshotError::MissingSection { tag: frame::tag::META })?;
        let mut r = Reader::new(meta);
        let seq = r.u64().map_err(SnapshotError::Frame)?;
        let stream = r.u8().map_err(SnapshotError::Frame)?;
        r.finish().map_err(SnapshotError::Frame)?;
        let raw = f
            .section(frame::tag::KEYS)
            .ok_or(SnapshotError::MissingSection { tag: frame::tag::KEYS })?;
        if !raw.len().is_multiple_of(8) {
            return Err(SnapshotError::Frame(frame::FrameError::Truncated));
        }
        let keys = le_u64s(raw);
        Ok(Record { seq, stream, keys })
    }
}

/// A replica bootstrap package: the op-log position of the snapshot cut
/// plus the whole-server checkpoint taken at that cut.
#[derive(Debug)]
pub struct Bootstrap {
    /// Sequence number of the last record the checkpoint reflects.
    pub seq: u64,
    /// A `CHECKPOINT` frame (see [`crate::snapshot::Checkpoint`]).
    pub checkpoint: Vec<u8>,
}

impl Bootstrap {
    /// Serialize into a `BOOTSTRAP` frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(frame::kind::BOOTSTRAP);
        w.section(frame::tag::META, &self.seq.to_le_bytes());
        w.section(frame::tag::SKETCH, &self.checkpoint);
        w.finish()
    }

    /// Parse a `BOOTSTRAP` frame.
    pub fn decode(buf: &[u8]) -> Result<Bootstrap, SnapshotError> {
        let f = Frame::parse(buf)?;
        if f.kind != frame::kind::BOOTSTRAP {
            return Err(SnapshotError::WrongKind {
                expected: frame::kind::BOOTSTRAP,
                found: f.kind,
            });
        }
        let meta = f
            .section(frame::tag::META)
            .ok_or(SnapshotError::MissingSection { tag: frame::tag::META })?;
        let mut r = Reader::new(meta);
        let seq = r.u64().map_err(SnapshotError::Frame)?;
        r.finish().map_err(SnapshotError::Frame)?;
        let checkpoint = f
            .section(frame::tag::SKETCH)
            .ok_or(SnapshotError::MissingSection { tag: frame::tag::SKETCH })?
            .to_vec();
        Ok(Bootstrap { seq, checkpoint })
    }
}

#[derive(Debug)]
struct Inner {
    /// Highest sequence number ever appended (0 = none).
    head: u64,
    /// Retained records, oldest first; `records[0].seq == floor`.
    records: VecDeque<Arc<Record>>,
}

/// What [`ReplLog::wait_from`] found at a subscription position.
#[derive(Debug)]
pub enum Tail {
    /// Records from the requested position, oldest first.
    Records(Vec<Arc<Record>>),
    /// The position fell off the bounded log; re-bootstrap.
    Truncated {
        /// Oldest sequence number still retained.
        floor: u64,
    },
    /// Nothing new within the timeout (send a heartbeat instead).
    Timeout,
}

/// The primary's bounded, in-memory op log (see module docs).
#[derive(Debug)]
pub struct ReplLog {
    inner: OrderedMutex<Inner>,
    grew: Condvar,
    cap: usize,
}

impl ReplLog {
    /// An empty log retaining at most `cap` records.
    pub fn new(cap: usize) -> Self {
        Self {
            inner: OrderedMutex::new("repl-log", Inner { head: 0, records: VecDeque::new() }),
            grew: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Run `enqueue` (the shard-FIFO sends) and, if it reports success,
    /// append the op as the next record — both under the log lock, so log
    /// order equals apply order. Returns `enqueue`'s response unchanged.
    pub fn ingest<R>(&self, stream: u8, keys: &[u64], enqueue: impl FnOnce() -> (R, bool)) -> R {
        let mut g = self.inner.lock();
        let (resp, accepted) = enqueue();
        if accepted {
            g.head += 1;
            let rec = Arc::new(Record { seq: g.head, stream, keys: keys.to_vec() });
            if g.records.len() == self.cap {
                g.records.pop_front();
            }
            g.records.push_back(rec);
            drop(g);
            self.grew.notify_all();
        }
        resp
    }

    /// Run `enqueue` (snapshot jobs to every shard) under the log lock and
    /// return the head at that instant: the checkpoint the jobs produce
    /// reflects exactly the records with `seq <=` the returned cut.
    pub fn cut(&self, enqueue: impl FnOnce()) -> u64 {
        let g = self.inner.lock();
        enqueue();
        g.head
    }

    /// Highest appended sequence number (0 = empty).
    pub fn head(&self) -> u64 {
        self.inner.lock().head
    }

    /// Oldest retained sequence number (0 = empty log).
    pub fn floor(&self) -> u64 {
        let g = self.inner.lock();
        g.records.front().map_or(0, |r| r.seq)
    }

    /// Collect up to `max` records starting at `next`, blocking up to
    /// `timeout` for the first one. `next` may be `head + 1` (caught up).
    pub fn wait_from(&self, next: u64, max: usize, timeout: Duration) -> Tail {
        let mut g = self.inner.lock();
        loop {
            if let Some(front) = g.records.front() {
                if next < front.seq {
                    return Tail::Truncated { floor: front.seq };
                }
                if next <= g.head {
                    let skip = usize_of(next - front.seq);
                    let out: Vec<Arc<Record>> =
                        g.records.iter().skip(skip).take(max).map(Arc::clone).collect();
                    return Tail::Records(out);
                }
            }
            let (g2, timed_out) = g.wait_timeout(&self.grew, timeout);
            g = g2;
            if timed_out && g.head < next {
                return Tail::Timeout;
            }
        }
    }
}

/// The primary's registry of live replication subscribers, for
/// `CLUSTER_STATUS`. Entries are added when a feed starts and removed
/// when it ends; `acked` tracks the peer's `REPL_ACK`s.
#[derive(Debug)]
pub struct ReplHub {
    peers: OrderedMutex<Vec<(u64, String, u64)>>, // (id, addr, acked)
    next_id: OrderedMutex<u64>,
}

impl Default for ReplHub {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplHub {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            peers: OrderedMutex::new("repl-hub-peers", Vec::new()),
            next_id: OrderedMutex::new("repl-hub-ids", 0),
        }
    }

    /// Register a subscriber; returns its registry id.
    pub fn register(&self, addr: String) -> u64 {
        let mut id_g = self.next_id.lock();
        *id_g += 1;
        let id = *id_g;
        drop(id_g);
        // audit:allow(growth): one entry per live subscriber; the accept loop caps connections
        self.peers.lock().push((id, addr, 0));
        id
    }

    /// Record an acknowledged sequence number for a subscriber.
    pub fn ack(&self, id: u64, seq: u64) {
        let mut g = self.peers.lock();
        if let Some(p) = g.iter_mut().find(|(pid, _, _)| *pid == id) {
            p.2 = p.2.max(seq);
        }
    }

    /// Remove a subscriber (its feed ended).
    pub fn deregister(&self, id: u64) {
        let mut g = self.peers.lock();
        g.retain(|(pid, _, _)| *pid != id);
    }

    /// Snapshot the registry for `CLUSTER_STATUS`.
    pub fn status(&self) -> Vec<PeerStatus> {
        let g = self.peers.lock();
        g.iter().map(|(_, addr, acked)| PeerStatus { addr: addr.clone(), acked: *acked }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let rec = Record { seq: 42, stream: 1, keys: vec![0, u64::MAX, 7] };
        let dec = Record::decode(&rec.encode()).expect("decode");
        assert_eq!(dec, rec);
        let empty = Record { seq: 1, stream: 0, keys: vec![] };
        assert_eq!(Record::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn record_rejects_wrong_kind() {
        let boot = Bootstrap { seq: 1, checkpoint: vec![1, 2, 3] }.encode();
        assert!(Record::decode(&boot).is_err());
        assert!(Record::decode(b"garbage").is_err());
    }

    #[test]
    fn bootstrap_roundtrip() {
        let b = Bootstrap { seq: 99, checkpoint: vec![4, 5, 6] };
        let dec = Bootstrap::decode(&b.encode()).expect("decode");
        assert_eq!(dec.seq, 99);
        assert_eq!(dec.checkpoint, vec![4, 5, 6]);
    }

    #[test]
    fn log_appends_and_tails() {
        let log = ReplLog::new(8);
        for i in 0..5u64 {
            log.ingest(0, &[i], || ((), true));
        }
        assert_eq!(log.head(), 5);
        assert_eq!(log.floor(), 1);
        match log.wait_from(1, 10, Duration::from_millis(1)) {
            Tail::Records(rs) => {
                assert_eq!(rs.len(), 5);
                assert_eq!(rs[0].seq, 1);
                assert_eq!(rs[4].seq, 5);
            }
            _ => panic!("expected records"),
        }
        // Caught up: next = head + 1 times out rather than truncating.
        assert!(matches!(log.wait_from(6, 10, Duration::from_millis(1)), Tail::Timeout));
    }

    #[test]
    fn log_truncates_at_cap() {
        let log = ReplLog::new(3);
        for i in 0..10u64 {
            log.ingest(0, &[i], || ((), true));
        }
        assert_eq!(log.head(), 10);
        assert_eq!(log.floor(), 8);
        assert!(matches!(
            log.wait_from(5, 10, Duration::from_millis(1)),
            Tail::Truncated { floor: 8 }
        ));
        match log.wait_from(8, 10, Duration::from_millis(1)) {
            Tail::Records(rs) => assert_eq!(rs.len(), 3),
            _ => panic!("expected records"),
        }
    }

    #[test]
    fn rejected_enqueue_appends_nothing() {
        let log = ReplLog::new(4);
        log.ingest(0, &[1], || ((), false));
        assert_eq!(log.head(), 0);
        assert_eq!(log.floor(), 0);
    }

    #[test]
    fn cut_is_exact() {
        let log = ReplLog::new(16);
        log.ingest(0, &[1], || ((), true));
        log.ingest(0, &[2], || ((), true));
        let cut = log.cut(|| {});
        assert_eq!(cut, 2);
        log.ingest(0, &[3], || ((), true));
        assert_eq!(log.head(), 3);
    }

    #[test]
    fn hub_tracks_peers() {
        let hub = ReplHub::new();
        let a = hub.register("1.2.3.4:5".into());
        let b = hub.register("6.7.8.9:10".into());
        hub.ack(a, 7);
        hub.ack(b, 3);
        hub.ack(b, 2); // acks never regress
        let st = hub.status();
        assert_eq!(st.len(), 2);
        assert_eq!(st[0].acked, 7);
        assert_eq!(st[1].acked, 3);
        hub.deregister(a);
        assert_eq!(hub.status().len(), 1);
    }
}
