//! Minimal Linux `epoll` FFI shims and a cross-thread waker — the entire
//! OS surface of the reactor, kept to four raw syscalls so the crate
//! stays free of external dependencies. Everything else the reactor
//! needs (non-blocking sockets, vectored writes, raw fds) comes from
//! `std`.
//!
//! The `EpollEvent` layout matches the kernel ABI: packed on x86/x86_64
//! (where the kernel struct is `__attribute__((packed))`), naturally
//! aligned elsewhere.
//!
//! This module is the crate's **only** `unsafe` exception (the crate
//! otherwise denies `unsafe_code`): four FFI declarations and their call
//! sites, each with a SAFETY argument.

#![allow(unsafe_code)]

use std::fmt;
use std::io::{self, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::c_int;
use std::os::unix::net::UnixStream;

/// Readable (or peer closed — `EPOLLHUP`/`EPOLLRDHUP` also wake reads).
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; no need to request it).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported; no need to request it).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down the write half of the connection.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;

/// One readiness event, kernel ABI layout.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The caller's token, returned verbatim with each event.
    pub data: u64,
}

impl fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Copy out of the packed struct; references into it are UB.
        let events = self.events;
        let data = self.data;
        f.debug_struct("EpollEvent").field("events", &events).field("data", &data).finish()
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: c_int,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; any flag value is
        // accepted or rejected by the kernel with -1/errno.
        // audit:allow(unsafe): raw syscall, no pointers cross the boundary
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Register `fd` for `events`, tagging its events with `data`.
    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` is a live, properly laid out (#[repr(C)], kernel
        // ABI) stack value for the duration of the call.
        // audit:allow(unsafe): pointer is to a live repr(C) stack value
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Deregister `fd`.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `add` — pre-2.6.9 kernels demanded a non-null
        // event pointer even for DEL, and `ev` satisfies both eras.
        // audit:allow(unsafe): pointer is to a live repr(C) stack value
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Wait up to `timeout_ms` for events; fills `events` from the front
    /// and returns how many arrived (0 on timeout or `EINTR`).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let cap = c_int::try_from(events.len()).unwrap_or(c_int::MAX).max(1);
        // SAFETY: `events` is a live mutable slice; `cap` never exceeds
        // its length, so the kernel writes only within bounds.
        // audit:allow(unsafe): kernel writes stay within the slice (cap <= len)
        let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), cap, timeout_ms) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(usize::try_from(rc).unwrap_or(0))
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` came from a successful epoll_create1 and is
        // owned exclusively by this value; double-close is impossible.
        // audit:allow(unsafe): fd owned exclusively, closed exactly once
        unsafe {
            close(self.fd);
        }
    }
}

/// Wakes a reactor blocked in [`Epoll::wait`] from any thread, by writing
/// one byte into a socketpair whose read half is registered with the
/// epoll instance. Wakes coalesce: the byte is advisory, the reactor
/// drains the socket and re-checks all its queues.
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Poke the reactor. Errors (full pipe, reactor gone) are ignored —
    /// a full pipe already guarantees a pending wakeup.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// A connected waker pair: the [`Waker`] for producers, the read half for
/// the reactor to register and drain. Both halves are non-blocking.
pub fn waker_pair() -> io::Result<(Waker, UnixStream)> {
    let (rx, tx) = UnixStream::pair()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    Ok((Waker { tx }, rx))
}

/// Convenience: the raw fd of any socket-like type.
pub fn raw_fd<T: AsRawFd>(s: &T) -> RawFd {
    s.as_raw_fd()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn epoll_reports_readable_socketpair() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        epoll.add(b.as_raw_fd(), EPOLLIN, 42).expect("add");
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0, "nothing readable yet");
        (&a).write_all(b"x").expect("write");
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 42);
        epoll.del(b.as_raw_fd()).expect("del");
    }

    #[test]
    fn waker_wakes_and_drains() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (waker, mut rx) = waker_pair().expect("pair");
        epoll.add(rx.as_raw_fd(), EPOLLIN, 7).expect("add");
        waker.wake();
        waker.wake();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1, "wakes coalesce onto one fd");
        let mut buf = [0u8; 16];
        let drained = rx.read(&mut buf).expect("drain");
        assert!(drained >= 1);
    }
}
