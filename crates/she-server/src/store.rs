//! Generation-rotating checkpoint store.
//!
//! A single `checkpoint.she` file is a single point of failure: one torn
//! write or one flipped bit and the server has nothing to restore from.
//! [`CheckpointStore`] keeps **two generations** — `checkpoint.she`
//! (latest) and `checkpoint.prev.she` (the one before it) — and rotates
//! on every save, so corruption of the latest file degrades to "restore
//! the previous checkpoint" instead of "replay the stream".
//!
//! * [`CheckpointStore::save`] rotates latest → previous, then writes the
//!   new frame to a temp file and renames it into place: a crash at any
//!   point leaves at least one intact generation on disk.
//! * [`CheckpointStore::load`] decodes the latest generation. A file that
//!   *reads* but does not *decode* is quarantined to
//!   `checkpoint.she.corrupt` (never restored from silently, never
//!   deleted — it is evidence) and the previous generation is tried;
//!   only when both are gone does the load fail.
//!
//! The chaos soak's corruption drill (`she-chaos`) deliberately mangles
//! the latest generation and asserts the fallback restore is bit-for-bit
//! identical to the previous checkpoint's engine state.

use crate::snapshot::Checkpoint;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File name of the newest checkpoint generation.
pub const LATEST: &str = "checkpoint.she";
/// File name of the generation before it, kept as the fallback.
pub const PREVIOUS: &str = "checkpoint.prev.she";
/// Where a corrupt latest generation is moved aside for inspection.
pub const QUARANTINE: &str = "checkpoint.she.corrupt";

/// How a [`CheckpointStore::load`] was satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The latest generation decoded cleanly.
    Latest,
    /// The latest generation was corrupt: it was moved to `quarantined`
    /// and the checkpoint came from the previous generation instead.
    FellBack {
        /// Where the corrupt latest file ended up.
        quarantined: PathBuf,
    },
}

/// Why a save or load failed.
#[derive(Debug)]
pub enum StoreError {
    /// Plain I/O (missing file, bad permissions): nothing is quarantined
    /// because there is nothing to move aside.
    Io {
        /// The path the operation failed on.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// Every on-disk generation was corrupt; `detail` names the
    /// quarantined file.
    Corrupt {
        /// Human-readable description, including the quarantine path.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            StoreError::Corrupt { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A directory holding up to two checkpoint generations plus, possibly,
/// a quarantined corpse.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created on first save).
    pub fn new<P: Into<PathBuf>>(dir: P) -> Self {
        Self { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the latest generation.
    pub fn latest_path(&self) -> PathBuf {
        self.dir.join(LATEST)
    }

    /// Path of the fallback generation.
    pub fn previous_path(&self) -> PathBuf {
        self.dir.join(PREVIOUS)
    }

    fn io_err(path: &Path) -> impl FnOnce(io::Error) -> StoreError + '_ {
        move |source| StoreError::Io { path: path.to_path_buf(), source }
    }

    /// Write an encoded checkpoint frame as the new latest generation,
    /// rotating the old latest to the fallback slot first. Returns the
    /// path written. Temp-file + rename: a crash mid-save leaves the
    /// previous generations intact, never a torn latest.
    pub fn save(&self, frame: &[u8]) -> Result<PathBuf, StoreError> {
        fs::create_dir_all(&self.dir).map_err(Self::io_err(&self.dir))?;
        let latest = self.latest_path();
        let previous = self.previous_path();
        if latest.exists() {
            fs::rename(&latest, &previous).map_err(Self::io_err(&latest))?;
        }
        let tmp = self.dir.join("checkpoint.she.tmp");
        fs::write(&tmp, frame).map_err(Self::io_err(&tmp))?;
        fs::rename(&tmp, &latest).map_err(Self::io_err(&latest))?;
        Ok(latest)
    }

    /// Decode the newest intact generation.
    ///
    /// Corruption of the latest file is handled, not propagated: the file
    /// is quarantined and the previous generation is tried. Only a plain
    /// I/O failure on the latest file (e.g. the store does not exist) or
    /// corruption with no usable fallback is an error.
    pub fn load(&self) -> Result<(Checkpoint, LoadOutcome), StoreError> {
        let latest = self.latest_path();
        let bytes = fs::read(&latest).map_err(Self::io_err(&latest))?;
        let decode_err = match Checkpoint::decode(&bytes) {
            Ok(ckpt) => return Ok((ckpt, LoadOutcome::Latest)),
            Err(e) => e,
        };
        let quarantine = self.dir.join(QUARANTINE);
        let moved = fs::rename(&latest, &quarantine).is_ok();
        if let Ok(prev_bytes) = fs::read(self.previous_path()) {
            if let Ok(ckpt) = Checkpoint::decode(&prev_bytes) {
                return Ok((ckpt, LoadOutcome::FellBack { quarantined: quarantine }));
            }
        }
        Err(StoreError::Corrupt {
            detail: format!(
                "{}: corrupt checkpoint ({decode_err}){}; no intact previous generation",
                latest.display(),
                if moved {
                    format!("; quarantined to {}", quarantine.display())
                } else {
                    String::new()
                }
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DirectEngine, EngineConfig};

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("she-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::new(dir)
    }

    fn checkpoint_frame(fill: u64) -> Vec<u8> {
        let mut e = DirectEngine::new(EngineConfig {
            window: 1 << 10,
            shards: 2,
            memory_bytes: 8 << 10,
            seed: 7,
        });
        for k in 0..fill {
            e.insert(0, she_hash::mix64(k));
        }
        e.checkpoint()
    }

    #[test]
    fn save_then_load_is_latest() {
        let store = temp_store("roundtrip");
        let frame = checkpoint_frame(100);
        store.save(&frame).unwrap();
        let (ckpt, outcome) = store.load().unwrap();
        assert_eq!(outcome, LoadOutcome::Latest);
        assert_eq!(ckpt.encode(), frame, "round trip must be bit-exact");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn second_save_rotates_first_into_previous() {
        let store = temp_store("rotate");
        let gen1 = checkpoint_frame(10);
        let gen2 = checkpoint_frame(20);
        store.save(&gen1).unwrap();
        store.save(&gen2).unwrap();
        assert_eq!(fs::read(store.latest_path()).unwrap(), gen2);
        assert_eq!(fs::read(store.previous_path()).unwrap(), gen1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_bit_for_bit() {
        let store = temp_store("fallback");
        let gen1 = checkpoint_frame(10);
        store.save(&gen1).unwrap();
        store.save(&checkpoint_frame(20)).unwrap();
        fs::write(store.latest_path(), b"SHEF but torn mid-frame").unwrap();
        let (ckpt, outcome) = store.load().unwrap();
        match outcome {
            LoadOutcome::FellBack { quarantined } => {
                assert!(quarantined.exists(), "corrupt file kept as evidence");
                assert!(!store.latest_path().exists(), "corrupt latest moved aside");
            }
            LoadOutcome::Latest => panic!("must fall back, not decode garbage"),
        }
        assert_eq!(ckpt.encode(), gen1, "fallback must be the previous generation, bit-for-bit");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_latest_without_previous_is_a_clean_error() {
        let store = temp_store("noprev");
        fs::create_dir_all(store.dir()).unwrap();
        fs::write(store.latest_path(), b"SHEF but torn mid-frame").unwrap();
        let err = store.load().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("corrupt checkpoint"), "{msg}");
        assert!(msg.contains("quarantined"), "{msg}");
        assert!(store.dir().join(QUARANTINE).exists());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_store_is_io_not_corruption() {
        let store = CheckpointStore::new("/nonexistent-she-store-dir");
        match store.load().unwrap_err() {
            StoreError::Io { .. } => {}
            StoreError::Corrupt { detail } => panic!("misclassified as corrupt: {detail}"),
        }
    }
}
