//! Capped exponential backoff with jitter — shared by the client's
//! `BUSY` retry loop and the replica's reconnect loop.
//!
//! Delays double from `base` up to `cap`, each multiplied by a uniform
//! jitter in `[0.5, 1.5)` so a fleet of retriers doesn't thunder in
//! lockstep. The jitter source is a tiny in-tree xorshift (the workspace
//! is std-only by design).

use std::time::Duration;

/// A capped exponential backoff schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A schedule starting at `base`, doubling up to `cap`, jittered by
    /// `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self { base, cap, attempt: 0, rng: seed | 1 }
    }

    /// A schedule seeded from the clock (fine for independent retriers).
    pub fn from_clock(base: Duration, cap: Duration) -> Self {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::new(base, cap, seed)
    }

    /// Attempts taken since the last [`Backoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay: `min(cap, base · 2^attempt)` times a jitter in
    /// `[0.5, 1.5)`. Advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.base.saturating_mul(1u32 << self.attempt.min(16));
        let capped = exp.min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        // xorshift64 step, then map the top bits to [0.5, 1.5).
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let jitter = 0.5 + (self.rng >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_secs_f64(capped.as_secs_f64() * jitter)
    }

    /// Back to the base delay (call after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let base = Duration::from_millis(2);
        let cap = Duration::from_millis(64);
        let mut b = Backoff::new(base, cap, 7);
        let mut prev_raw = Duration::ZERO;
        for i in 0..12 {
            let d = b.next_delay();
            // Jitter bounds: [0.5 · raw, 1.5 · raw] where raw ≤ cap.
            assert!(d <= cap.mul_f64(1.5), "attempt {i}: {d:?} above cap");
            assert!(d >= base.mul_f64(0.5), "attempt {i}: {d:?} below base");
            if i >= 6 {
                // Past the cap, raw delays stop growing.
                assert!(d.as_secs_f64() >= cap.as_secs_f64() * 0.49, "attempt {i} uncapped");
            }
            prev_raw = prev_raw.max(d);
        }
        assert_eq!(b.attempts(), 12);
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay() <= base.mul_f64(1.5));
    }

    #[test]
    fn jitter_varies() {
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_millis(100), 3);
        let a = b.next_delay();
        b.reset();
        let c = b.next_delay();
        assert_ne!(a, c, "jitter must differ between draws");
    }
}
