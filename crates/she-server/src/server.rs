//! The serving tier: an epoll reactor front end over shard worker
//! threads, with explicit backpressure.
//!
//! Threading model (all `std`; see `docs/SERVER.md` for the full story):
//!
//! ```text
//!  epoll reactor thread ──► S bounded mpsc queues ──► S shard workers
//!        │    ▲                        (batch-drained per wakeup)
//!        │    └── completion queue + waker (query answers return)
//!        ├──► offload pool (snapshots, stats, scatter-gather legs)
//!        └──► feed threads (replication subscriptions)
//! ```
//!
//! One reactor thread owns every client socket non-blockingly (the
//! sans-IO [`crate::conn::Connection`] state machine per connection, the
//! epoll shims from [`crate::sys`]); queries are dispatched to the shard
//! queues with a completion sink and answered when the worker posts back,
//! so thousands of idle or slow connections cost no threads.
//!
//! * **Backpressure** — inserts are admitted with `try_send`; if the
//!   target shard's queue is full *before anything was enqueued*, the
//!   client gets `BUSY{retry_after_ms}` and nothing changes. Once any
//!   sub-batch of a request has been enqueued the remainder uses blocking
//!   sends, so a request is applied exactly once or not at all.
//! * **Ordering** — the reactor parses one connection's frames in order
//!   and dispatches at most one request per connection at a time, and the
//!   shard queues are FIFO, so a query observes every insert the same
//!   connection sent before it (the property the verify mode relies on).
//! * **Shutdown** — the `SHUTDOWN` request flips a flag and wakes the
//!   reactor, which closes the listener immediately, grace-flushes
//!   in-flight answers, joins its feed threads, and exits; when the last
//!   queue sender drops, workers drain their queues and return their
//!   final stats.
//! * **Self-protection** — a connection cap refuses excess clients with
//!   `OVERLOADED` at accept time; a per-connection deadline evicts peers
//!   that stall mid-frame (read side) or stop draining their socket
//!   (write side); read queries are shed with `OVERLOADED` when their
//!   shard queue is saturated, so writes keep their `BUSY`-with-nothing-
//!   applied guarantee while reads degrade first. All three are counted
//!   in [`ServeCounters`].

use crate::cluster::{cluster_op, scatter_query, scatter_query_batch, ClusterDirectory};
use crate::codec::{read_frame, write_frame};
use crate::engine::{EngineConfig, ShardEngine};
use crate::protocol::{
    ClusterStatusInfo, ReadpathStatus, Request, Response, ShardStats, MAX_FRAME, PROTOCOL_VERSION,
};
use crate::reactor::spawn_reactor;
use crate::repl::{Bootstrap, ReplHub, ReplLog, Tail};
use crate::snapshot::Checkpoint;
use crate::sys::{waker_pair, Waker};
use crate::worker::{run_worker, Answer, Job, QuerySink, ShardQueue};
use she_metrics::ServeCounters;
use she_readpath::{FastAnswer, ReadPath, ReadPathConfig};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Live replica-side link state, shared between the embedded server
/// (which answers `CLUSTER_STATUS` and `NOT_PRIMARY` from it) and the
/// `she-replica` runtime that updates it.
#[derive(Debug, Default)]
pub struct ReplicaStatus {
    /// Highest op-log sequence number applied locally.
    pub applied: AtomicU64,
    /// Whether the feed from the primary is currently connected.
    pub connected: AtomicBool,
    /// The sequence number the bootstrap snapshot reflected.
    pub boot_seq: AtomicU64,
}

/// Whether this server accepts writes or follows a primary.
#[derive(Debug, Clone, Default)]
pub enum Role {
    /// Accepts writes; replicates them when `repl_log > 0`.
    #[default]
    Primary,
    /// Serves reads only; writes are answered `NOT_PRIMARY`.
    Replica {
        /// Where writes should go (returned in `NOT_PRIMARY`).
        primary: String,
        /// Link state maintained by the replication runtime.
        status: Arc<ReplicaStatus>,
    },
}

/// Everything needed to start a server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Engine sizing (window, shards, memory, seed).
    pub engine: EngineConfig,
    /// Bounded depth of each shard's job queue, in jobs.
    pub queue_capacity: usize,
    /// Hint returned with `BUSY` responses.
    pub retry_after_ms: u32,
    /// Primary (default) or replica.
    pub role: Role,
    /// Op-log capacity in records; 0 disables replication serving.
    pub repl_log: usize,
    /// Idle keep-alive interval on replication feeds, in milliseconds.
    pub heartbeat_ms: u64,
    /// Per-connection deadline in milliseconds: a frame that starts but
    /// does not complete within this budget, or a response write that
    /// stalls this long, evicts the connection. 0 disables eviction.
    pub client_deadline_ms: u64,
    /// Maximum simultaneously served connections; excess clients get one
    /// `OVERLOADED` frame and are closed.
    pub max_connections: usize,
    /// v4: the node's shared cluster-map view. `Some` makes this server a
    /// cluster member: it answers `CLUSTER_JOIN` / `CLUSTER_MAP` from the
    /// directory and coordinates `CLUSTER_QUERY` scatter-gathers.
    pub cluster: Option<Arc<ClusterDirectory>>,
    /// v5: `Some` enables the two-stage read path (fast mirror + mark
    /// cache) behind `QUERY_FAST`. On a primary this requires
    /// `repl_log > 0` — the mirror refreshes from the op-log tail.
    pub readpath: Option<ReadPathConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
            queue_capacity: 256,
            retry_after_ms: 2,
            role: Role::Primary,
            repl_log: 0,
            heartbeat_ms: 500,
            client_deadline_ms: 10_000,
            max_connections: 1024,
            cluster: None,
            readpath: None,
        }
    }
}

/// End-to-end budget for one scatter-gather leg to a peer partition.
pub(crate) const CLUSTER_LEG_TIMEOUT: Duration = Duration::from_secs(10);

/// State shared by the reactor, the offload pool, and the feed threads.
/// Workers are *not* behind this — they own their engines; only their
/// queue senders live here, and dropping the last `Shared` is what lets
/// the workers drain and exit.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) txs: Vec<ShardQueue>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) local_addr: SocketAddr,
    pub(crate) engine: EngineConfig,
    pub(crate) retry_after_ms: u32,
    pub(crate) role: Role,
    pub(crate) log: Option<ReplLog>,
    pub(crate) hub: ReplHub,
    pub(crate) heartbeat_ms: u64,
    /// `None` when eviction is disabled (`client_deadline_ms = 0`).
    pub(crate) client_deadline: Option<Duration>,
    pub(crate) max_connections: usize,
    pub(crate) conns: AtomicUsize,
    pub(crate) counters: Arc<ServeCounters>,
    pub(crate) cluster: Option<Arc<ClusterDirectory>>,
    /// v5: the QUERY_FAST accelerator (fast mirror + mark cache), when
    /// the server was started with a read-path config.
    pub(crate) readpath: Option<Arc<ReadPath>>,
    /// Wakes the reactor out of `epoll_wait` (shutdown, completions).
    pub(crate) waker: Arc<Waker>,
    /// v4 failover: a replica-role server that won a partition election
    /// flips this and serves writes from then on (its own op log starts
    /// at its promotion point; followers re-bootstrap from it).
    promoted: AtomicBool,
}

/// How a shed-capable read query resolved.
pub(crate) enum ReadAnswer<T> {
    /// The shard(s) answered.
    Value(T),
    /// A shard queue was full; the query was rejected without waiting.
    Shed,
    /// A worker is gone (shutdown).
    Gone,
}

/// Validate a batch-query op byte (only the per-key ops batch).
pub(crate) fn batch_op_check(op: u8) -> Result<(), Box<Response>> {
    if op == cluster_op::MEMBER || op == cluster_op::FREQ {
        Ok(())
    } else {
        Err(Box::new(Response::Err(format!(
            "batch query op {op} must be member ({}) or freq ({})",
            cluster_op::MEMBER,
            cluster_op::FREQ
        ))))
    }
}

/// Split a batch query's keys by owning shard, remembering each key's
/// position in the request (`u32` — positions are bounded by `MAX_BATCH`).
pub(crate) fn partition_batch(
    engine: &EngineConfig,
    keys: &[u64],
    shards: usize,
) -> Vec<(Vec<u64>, Vec<u32>)> {
    let mut per: Vec<(Vec<u64>, Vec<u32>)> = vec![(Vec::new(), Vec::new()); shards];
    for (i, &key) in keys.iter().enumerate() {
        let shard = engine.shard_of(key);
        // audit:allow(growth): per-shard split of one batch, total bounded by MAX_BATCH at decode
        per[shard].0.push(key);
        // audit:allow(growth): position index of the same bounded batch
        per[shard].1.push(u32::try_from(i).unwrap_or(u32::MAX));
    }
    per
}

pub(crate) fn answer_mismatch() -> Response {
    Response::Err("internal: query answered with the wrong type".to_string())
}

/// Sum f64 answers in shard order; `None` on a type mismatch.
fn sum_f64(parts: Vec<Answer>) -> Option<f64> {
    let mut sum = 0.0f64;
    for a in parts {
        match a {
            Answer::F64(v) => sum += v,
            _ => return None,
        }
    }
    Some(sum)
}

impl Shared {
    /// Route one decoded request; never panics on client input. This is
    /// the *blocking* path — the offload pool, feed threads, and tests.
    /// The reactor answers the per-key queries natively (completion-based)
    /// and routes everything else here.
    pub(crate) fn handle(&self, req: Request) -> Response {
        match req {
            Request::QueryMember { key } => {
                let shard = self.engine.shard_of(key);
                match self.ask_read(shard, |sink| Job::Member { key, sink }) {
                    ReadAnswer::Value(Answer::Bool(v)) => Response::Bool(v),
                    ReadAnswer::Value(_) => answer_mismatch(),
                    ReadAnswer::Shed => self.shed(),
                    ReadAnswer::Gone => shutting_down(),
                }
            }
            Request::QueryCard => match self.ask_read_all(|sink| Job::Card { sink }) {
                ReadAnswer::Value(parts) => match sum_f64(parts) {
                    Some(sum) => Response::F64(sum),
                    None => answer_mismatch(),
                },
                ReadAnswer::Shed => self.shed(),
                ReadAnswer::Gone => shutting_down(),
            },
            Request::QueryFreq { key } => {
                let shard = self.engine.shard_of(key);
                match self.ask_read(shard, |sink| Job::Freq { key, sink }) {
                    ReadAnswer::Value(Answer::U64(v)) => Response::U64(v),
                    ReadAnswer::Value(_) => answer_mismatch(),
                    ReadAnswer::Shed => self.shed(),
                    ReadAnswer::Gone => shutting_down(),
                }
            }
            Request::QuerySim => match self.ask_read_all(|sink| Job::Sim { sink }) {
                ReadAnswer::Value(parts) => {
                    let n = parts.len() as f64;
                    match sum_f64(parts) {
                        Some(sum) => Response::F64(sum / n),
                        None => answer_mismatch(),
                    }
                }
                ReadAnswer::Shed => self.shed(),
                ReadAnswer::Gone => shutting_down(),
            },
            Request::QueryBatch { op, keys } => self.query_batch(op, keys),
            Request::Stats => match self.ask_all(|reply| Job::Stats { reply }) {
                Some(parts) => Response::Stats(parts),
                None => shutting_down(),
            },
            Request::Snapshot { shard } => {
                let shard = shard as usize;
                if shard >= self.txs.len() {
                    return Response::Err(format!(
                        "shard {shard} out of range (server has {})",
                        self.txs.len()
                    ));
                }
                match self.ask(shard, |reply| Job::Snapshot { reply }) {
                    Some(blob) => Response::Blob(blob),
                    None => shutting_down(),
                }
            }
            Request::SnapshotAll => match self.ask_all(|reply| Job::Snapshot { reply }) {
                Some(shards) => {
                    let blob = Checkpoint { cfg: self.engine, shards }.encode();
                    if 1 + blob.len() > MAX_FRAME {
                        return Response::Err(format!(
                            "checkpoint of {} bytes exceeds the {} byte frame cap; \
                             fetch per-shard snapshots instead",
                            blob.len(),
                            MAX_FRAME
                        ));
                    }
                    Response::Blob(blob)
                }
                None => shutting_down(),
            },
            Request::Restore { shard, data } => {
                if let Some(primary) = self.write_refusal() {
                    return Response::NotPrimary { primary };
                }
                let shard = shard as usize;
                if shard >= self.txs.len() {
                    return Response::Err(format!(
                        "shard {shard} out of range (server has {})",
                        self.txs.len()
                    ));
                }
                // Restores bypass the op log, so the read-path mirror
                // must be fed the same frame directly or it diverges.
                let mirror = self.readpath.as_ref().map(|rp| (Arc::clone(rp), data.clone()));
                match self.ask(shard, |reply| Job::Restore { data, reply }) {
                    Some(Ok(())) => {
                        if let Some((rp, frame)) = mirror {
                            if rp.load(shard, &frame, false).is_err() {
                                rp.invalidate_all();
                            }
                        }
                        Response::Ok { accepted: 0 }
                    }
                    Some(Err(msg)) => Response::Err(msg),
                    None => shutting_down(),
                }
            }
            Request::ReplBootstrap => self.bootstrap(),
            Request::ClusterQuery { op, key } => match &self.cluster {
                // The scatter legs are plain QUERY_* requests (never a
                // nested CLUSTER_QUERY), so coordinators cannot recurse;
                // the self-leg loops back through our own reactor.
                Some(dir) => scatter_query(&dir.get(), op, key, CLUSTER_LEG_TIMEOUT),
                None => not_a_cluster_node(),
            },
            Request::ClusterQueryBatch { op, keys } => match &self.cluster {
                Some(dir) => scatter_query_batch(&dir.get(), op, &keys, CLUSTER_LEG_TIMEOUT),
                None => not_a_cluster_node(),
            },
            // Everything else is reactor-safe; share one implementation
            // so the two paths cannot drift.
            req => self.handle_inline(req),
        }
    }

    /// The reactor-safe subset of [`Shared::handle`]: every arm finishes
    /// with non-blocking work only — `try_send` admission for inserts,
    /// the mutex-light read path, atomic map swaps, a shutdown flag
    /// flip. The reactor's dispatch catch-all calls this directly, which
    /// lets `she audit` prove statically that no blocking syscall
    /// wrapper is reachable from the poll thread.
    pub(crate) fn handle_inline(&self, req: Request) -> Response {
        match req {
            Request::Insert { stream, key } => self.ingest(stream, vec![key]),
            Request::InsertBatch { stream, keys } => self.ingest(stream, keys),
            // Served inline (mutex + compute, never a shard queue).
            Request::QueryFast { op, key } => match &self.readpath {
                Some(rp) => match rp.query(op, key) {
                    Some(FastAnswer::Bool(v)) => Response::Bool(v),
                    Some(FastAnswer::Count(v)) => Response::U64(v),
                    Some(FastAnswer::Ranked(pairs)) => {
                        let mut flat = Vec::with_capacity(pairs.len() * 2);
                        for (k, est) in pairs {
                            flat.push(k);
                            flat.push(est);
                        }
                        Response::U64s(flat)
                    }
                    None => Response::Err(format!(
                        "unknown fast op {op} (member {}, freq {}, topk {}, flush {})",
                        she_readpath::op::MEMBER,
                        she_readpath::op::FREQ,
                        she_readpath::op::TOPK,
                        she_readpath::op::FLUSH
                    )),
                },
                None => Response::Err("read path disabled (serve with --readpath)".to_string()),
            },
            Request::Hello { version } => {
                // Speak the lower of the two versions; v1 clients never
                // send HELLO, and v1 servers answer it with ERR.
                Response::Hello { version: version.min(PROTOCOL_VERSION) }
            }
            Request::ClusterStatus => Response::ClusterStatus(self.cluster_status()),
            Request::ClusterJoin { from_node: _, map } => match &self.cluster {
                Some(dir) => {
                    dir.observe(&map);
                    Response::ClusterMapReply(dir.get())
                }
                None => not_a_cluster_node(),
            },
            Request::ClusterMapGet => match &self.cluster {
                Some(dir) => Response::ClusterMapReply(dir.get()),
                None => not_a_cluster_node(),
            },
            // Valid only *on* a feed; the reactor intercepts the
            // subscribe before it can reach here.
            Request::ReplSubscribe { .. } | Request::ReplAck { .. } => {
                Response::Err("replication feed messages outside a feed".to_string())
            }
            Request::Shutdown => {
                self.begin_shutdown();
                Response::Ok { accepted: 0 }
            }
            // A blocking request routed here is a dispatch bug, not a
            // client error — fail loudly instead of blocking the reactor.
            _ => Response::Err("internal: blocking request routed to the inline handler".into()),
        }
    }

    /// Channel-blocking batch point query (the offload/test path; the
    /// reactor runs the same split through its completion queue instead).
    pub(crate) fn query_batch(&self, op: u8, keys: Vec<u64>) -> Response {
        if let Err(resp) = batch_op_check(op) {
            return *resp;
        }
        if keys.is_empty() {
            return Response::U64s(Vec::new());
        }
        let parts = partition_batch(&self.engine, &keys, self.txs.len());
        let mut rxs = Vec::with_capacity(self.txs.len());
        for (shard, (shard_keys, pos)) in parts.into_iter().enumerate() {
            if shard_keys.is_empty() {
                continue;
            }
            let (tx, rx) = sync_channel(1);
            let job = Job::QueryBatch { op, keys: shard_keys, pos, sink: QuerySink::Channel(tx) };
            match self.txs[shard].try_send(job) {
                Ok(()) => rxs.push(rx),
                Err(TrySendError::Full(_)) => return self.shed(),
                Err(TrySendError::Disconnected(_)) => return shutting_down(),
            }
        }
        let mut out = vec![0u64; keys.len()];
        for rx in rxs {
            match rx.recv() {
                Ok(Answer::Slots(slots)) => {
                    for (pos, value) in slots {
                        if let Some(o) = out.get_mut(she_core::convert::usize_of(u64::from(pos))) {
                            *o = value;
                        }
                    }
                }
                Ok(_) => return answer_mismatch(),
                Err(_) => return shutting_down(),
            }
        }
        Response::U64s(out)
    }

    /// `Some(primary)` when this server must refuse writes: a replica
    /// that has not been promoted. A promoted replica serves writes like
    /// a primary (its op log begins at the promotion point).
    pub(crate) fn write_refusal(&self) -> Option<String> {
        match &self.role {
            Role::Replica { primary, .. } if !self.promoted.load(Ordering::SeqCst) => {
                Some(primary.clone())
            }
            _ => None,
        }
    }

    /// The write path: reject on replicas, then admit onto the shard
    /// queues — appending to the op log atomically when one is kept, so
    /// replicas replay the identical per-shard insert order.
    pub(crate) fn ingest(&self, stream: u8, keys: Vec<u64>) -> Response {
        if let Some(primary) = self.write_refusal() {
            return Response::NotPrimary { primary };
        }
        let accepted = keys.len() as u64;
        let parts: Vec<(usize, u8, Vec<u64>)> =
            self.engine.partition(&keys).into_iter().map(|(s, ks)| (s, stream, ks)).collect();
        match &self.log {
            Some(log) => log.ingest(stream, &keys, || {
                let resp = self.admit(parts, accepted);
                let ok = matches!(resp, Response::Ok { .. });
                (resp, ok)
            }),
            None => self.admit(parts, accepted),
        }
    }

    /// Capture a bootstrap package: snapshot jobs enqueued under the log
    /// lock (an exact cut), answers collected outside it.
    fn bootstrap(&self) -> Response {
        if let Some(primary) = self.write_refusal() {
            return Response::NotPrimary { primary };
        }
        let Some(log) = &self.log else {
            return Response::Err(
                "replication is disabled on this server (serve with --repl-log N)".to_string(),
            );
        };
        let mut rxs = Vec::with_capacity(self.txs.len());
        let mut wedged = false;
        let seq = log.cut(|| {
            for tx in &self.txs {
                let (reply, rx) = sync_channel(1);
                wedged |= tx.send(Job::Snapshot { reply }).is_err();
                rxs.push(rx);
            }
        });
        if wedged {
            return shutting_down();
        }
        let shards: Option<Vec<Vec<u8>>> = rxs.into_iter().map(|rx| rx.recv().ok()).collect();
        let Some(shards) = shards else {
            return shutting_down();
        };
        let checkpoint = Checkpoint { cfg: self.engine, shards }.encode();
        let blob = Bootstrap { seq, checkpoint }.encode();
        if blob.len() >= MAX_FRAME {
            return Response::Err(format!(
                "bootstrap of {} bytes exceeds the {MAX_FRAME} byte frame cap",
                blob.len()
            ));
        }
        Response::Blob(blob)
    }

    /// Live per-shard queue backlog, in shard order.
    fn queue_depths(&self) -> Vec<u64> {
        self.txs.iter().map(ShardQueue::depth).collect()
    }

    /// Read-path counters for `CLUSTER_STATUS`. On a following replica
    /// the mirror is fed synchronously by the injector (its own log is
    /// empty, so the refresher's watermark stays 0); `floor_seq` carries
    /// the replica's applied position so the report stays truthful.
    fn readpath_status(&self, floor_seq: u64) -> ReadpathStatus {
        match &self.readpath {
            Some(rp) => {
                let s = rp.counters().snapshot();
                ReadpathStatus {
                    enabled: true,
                    hits: s.hits,
                    misses: s.misses,
                    fills: s.fills,
                    invalidations: s.invalidations,
                    seq: rp.seq().max(floor_seq),
                }
            }
            None => ReadpathStatus::default(),
        }
    }

    /// Role, log positions, and peers for `CLUSTER_STATUS`. A promoted
    /// replica reports like a primary (its feed is gone for good; what
    /// matters now is its own log head and subscribers).
    fn cluster_status(&self) -> ClusterStatusInfo {
        if self.promoted.load(Ordering::SeqCst) {
            return ClusterStatusInfo {
                is_primary: true,
                connected: true,
                head: self.log.as_ref().map_or(0, |l| l.head()),
                floor: self.log.as_ref().map_or(0, |l| l.floor()),
                boot_seq: 0,
                primary: String::new(),
                peers: self.hub.status(),
                queue_depths: self.queue_depths(),
                readpath: self.readpath_status(0),
            };
        }
        match &self.role {
            Role::Primary => ClusterStatusInfo {
                is_primary: true,
                connected: true,
                head: self.log.as_ref().map_or(0, |l| l.head()),
                floor: self.log.as_ref().map_or(0, |l| l.floor()),
                boot_seq: 0,
                primary: String::new(),
                peers: self.hub.status(),
                queue_depths: self.queue_depths(),
                readpath: self.readpath_status(0),
            },
            Role::Replica { primary, status } => {
                let applied = status.applied.load(Ordering::SeqCst);
                ClusterStatusInfo {
                    is_primary: false,
                    connected: status.connected.load(Ordering::SeqCst),
                    head: applied,
                    floor: 0,
                    boot_seq: status.boot_seq.load(Ordering::SeqCst),
                    primary: primary.clone(),
                    peers: Vec::new(),
                    queue_depths: self.queue_depths(),
                    readpath: self.readpath_status(applied),
                }
            }
        }
    }

    /// Admission control for inserts: `try_send` until the first part is
    /// enqueued (full queue ⇒ `BUSY`, nothing applied), blocking sends for
    /// the rest (the request is already partially committed).
    fn admit(&self, parts: Vec<(usize, u8, Vec<u64>)>, accepted: u64) -> Response {
        let mut committed = false;
        for (shard, stream, keys) in parts {
            let job = Job::Batch { stream, keys };
            if committed {
                if self.txs[shard].send(job).is_err() {
                    return shutting_down();
                }
            } else {
                match self.txs[shard].try_send(job) {
                    Ok(()) => committed = true,
                    Err(TrySendError::Full(_)) => {
                        return Response::Busy { retry_after_ms: self.retry_after_ms }
                    }
                    Err(TrySendError::Disconnected(_)) => return shutting_down(),
                }
            }
        }
        Response::Ok { accepted }
    }

    /// Rendezvous with one shard; `None` when the worker is gone.
    fn ask<T>(&self, shard: usize, make: impl FnOnce(SyncSender<T>) -> Job) -> Option<T> {
        let (tx, rx) = sync_channel(1);
        self.txs[shard].send(make(tx)).ok()?;
        rx.recv().ok()
    }

    /// Count a shed read and answer `OVERLOADED`.
    pub(crate) fn shed(&self) -> Response {
        ServeCounters::bump(&self.counters.shed_reads);
        Response::Overloaded { retry_after_ms: self.retry_after_ms }
    }

    /// Like [`Shared::ask`], but non-blocking at the queue: a full shard
    /// queue sheds the read instead of waiting behind the write backlog.
    /// Reads degrade before writes — an insert that reaches `admit` can
    /// still claim the next free slot.
    fn ask_read(&self, shard: usize, make: impl FnOnce(QuerySink) -> Job) -> ReadAnswer<Answer> {
        let (tx, rx) = sync_channel(1);
        match self.txs[shard].try_send(make(QuerySink::Channel(tx))) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => return ReadAnswer::Shed,
            Err(TrySendError::Disconnected(_)) => return ReadAnswer::Gone,
        }
        match rx.recv() {
            Ok(v) => ReadAnswer::Value(v),
            Err(_) => ReadAnswer::Gone,
        }
    }

    /// Fan a read out to every shard with `try_send`. If any queue is
    /// full the whole query is shed; jobs already enqueued answer into
    /// dropped channels (workers ignore failed sink sends).
    fn ask_read_all(&self, mut make: impl FnMut(QuerySink) -> Job) -> ReadAnswer<Vec<Answer>> {
        let mut pending = Vec::with_capacity(self.txs.len());
        for tx in &self.txs {
            let (reply_tx, reply_rx) = sync_channel(1);
            match tx.try_send(make(QuerySink::Channel(reply_tx))) {
                Ok(()) => pending.push(reply_rx),
                Err(TrySendError::Full(_)) => return ReadAnswer::Shed,
                Err(TrySendError::Disconnected(_)) => return ReadAnswer::Gone,
            }
        }
        match pending.into_iter().map(|rx| rx.recv().ok()).collect::<Option<Vec<Answer>>>() {
            Some(parts) => ReadAnswer::Value(parts),
            None => ReadAnswer::Gone,
        }
    }

    /// Fan a query out to every shard, collecting answers in shard order.
    fn ask_all<T>(&self, mut make: impl FnMut(SyncSender<T>) -> Job) -> Option<Vec<T>> {
        let pending: Vec<_> = self
            .txs
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = sync_channel(1);
                tx.send(make(reply_tx)).ok()?;
                Some(reply_rx)
            })
            .collect::<Option<_>>()?;
        pending.into_iter().map(|rx| rx.recv().ok()).collect()
    }

    /// Flip the flag and wake the reactor out of `epoll_wait`.
    pub(crate) fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.waker.wake();
        }
    }
}

pub(crate) fn shutting_down() -> Response {
    Response::Err("server shutting down".to_string())
}

pub(crate) fn not_a_cluster_node() -> Response {
    Response::Err("not a cluster node (serve with `she cluster-serve`)".to_string())
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`Server::shutdown`] (or send the wire `SHUTDOWN`) then [`Server::join`].
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    reactor: JoinHandle<()>,
    offload: Vec<JoinHandle<()>>,
    refresher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<ShardStats>>,
}

impl Server {
    /// Bind, spawn the shard workers and the reactor, and return.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let engines = (0..cfg.engine.shards).map(|i| ShardEngine::new(&cfg.engine, i)).collect();
        Server::start_with_engines(cfg, engines)
    }

    /// Like [`Server::start`], but with pre-built shard engines — the
    /// restore path: engines come from a [`Checkpoint`] instead of empty.
    pub fn start_with_engines(cfg: ServerConfig, engines: Vec<ShardEngine>) -> io::Result<Server> {
        assert_eq!(engines.len(), cfg.engine.shards, "engine count must match cfg.engine.shards");
        if cfg.readpath.is_some() && cfg.repl_log == 0 && matches!(cfg.role, Role::Primary) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "--readpath on a primary requires --repl-log N: the fast mirror refreshes \
                 from the op-log tail",
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        // Seed the read-path mirror from the engines *before* they move
        // into the worker threads — a restored server's fast reads must
        // start from the restored state, not empty.
        let readpath = match cfg.readpath {
            Some(rcfg) => Some(crate::readpath::build(&cfg.engine, rcfg, &engines)?),
            None => None,
        };

        let mut txs = Vec::with_capacity(cfg.engine.shards);
        let mut workers = Vec::with_capacity(cfg.engine.shards);
        for (shard, engine) in engines.into_iter().enumerate() {
            let (queue, rx, depth) = ShardQueue::new(cfg.queue_capacity.max(1));
            txs.push(queue);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("she-shard-{shard}"))
                    .spawn(move || run_worker(engine, rx, depth))?,
            );
        }

        let (waker, waker_rx) = waker_pair()?;

        // Any server with `repl_log > 0` keeps a log — including a
        // replica, whose log stays empty while it follows but lets it
        // serve subscribers of its own the moment it is promoted.
        let log = (cfg.repl_log > 0).then(|| ReplLog::new(cfg.repl_log));
        let shared = Arc::new(Shared {
            txs,
            shutdown: AtomicBool::new(false),
            local_addr,
            engine: cfg.engine,
            retry_after_ms: cfg.retry_after_ms,
            role: cfg.role,
            log,
            hub: ReplHub::new(),
            heartbeat_ms: cfg.heartbeat_ms,
            client_deadline: (cfg.client_deadline_ms > 0)
                .then(|| Duration::from_millis(cfg.client_deadline_ms)),
            max_connections: cfg.max_connections.max(1),
            conns: AtomicUsize::new(0),
            counters: Arc::new(ServeCounters::new()),
            cluster: cfg.cluster,
            readpath,
            waker: Arc::new(waker),
            promoted: AtomicBool::new(false),
        });

        let (reactor, offload) = spawn_reactor(listener, waker_rx, Arc::clone(&shared))?;

        // The refresher tails the op log into the fast mirror. On a
        // replica the local log stays empty while following (the
        // injector feeds the mirror instead), so the thread idles until
        // a promotion starts filling the log — then it takes over.
        let refresher = match &shared.readpath {
            Some(rp) if shared.log.is_some() => {
                let shared = Arc::clone(&shared);
                let rp = Arc::clone(rp);
                Some(
                    std::thread::Builder::new()
                        .name("she-readpath-refresh".to_string())
                        .spawn(move || crate::readpath::run_refresher(&shared, &rp))?,
                )
            }
            _ => None,
        };
        Ok(Server { shared, reactor, offload, refresher, workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A handle that feeds this server's shard queues directly, bypassing
    /// the wire — the replica runtime's apply path. Holding an [`Injector`]
    /// keeps the shard workers alive: drop it before expecting
    /// [`Server::wait`] to finish draining.
    pub fn injector(&self) -> Injector {
        Injector {
            txs: self.shared.txs.clone(),
            cfg: self.shared.engine,
            readpath: self.shared.readpath.clone(),
        }
    }

    /// The QUERY_FAST accelerator, when enabled — how embedding runtimes
    /// and tests reach its counters and applied-sequence watermark.
    pub fn readpath(&self) -> Option<Arc<ReadPath>> {
        self.shared.readpath.clone()
    }

    /// Whether shutdown has been requested (poll-friendly; does not block
    /// or consume the handle).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Live self-protection counters (evictions, shed reads, refused
    /// connections). The handle can be cloned out and read after
    /// [`Server::join`] via the returned `Arc`.
    pub fn counters(&self) -> Arc<ServeCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// Promote a replica-role server to serve writes (v4 failover). From
    /// here on it accepts inserts, answers `REPL_BOOTSTRAP`, and reports
    /// as a primary in `CLUSTER_STATUS`; its op log (present when the
    /// server was started with `repl_log > 0`) begins at the promotion
    /// point. Idempotent; a no-op on a server that is already a primary.
    pub fn promote(&self) {
        self.shared.promoted.store(true, Ordering::SeqCst);
    }

    /// Ask the server to stop, as if a client sent `SHUTDOWN`.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Initiate shutdown, then wait for every connection to close and
    /// every queue to drain; returns the final per-shard stats.
    pub fn join(self) -> Vec<ShardStats> {
        self.shared.begin_shutdown();
        self.wait()
    }

    /// Block until something *else* stops the server (a wire `SHUTDOWN`
    /// or [`Server::shutdown`] from another thread), then drain and
    /// return the final per-shard stats.
    pub fn wait(self) -> Vec<ShardStats> {
        // The reactor exits on the shutdown flag, joining its feed
        // threads on the way out; its death drops the offload senders,
        // which lets the offload threads drain and exit.
        let _ = self.reactor.join();
        for h in self.offload {
            let _ = h.join();
        }
        // The refresher exits on the shutdown flag within one poll; it
        // must be joined before the Shared drop below, because it holds
        // its own Arc<Shared> (and with it, queue senders).
        if let Some(h) = self.refresher {
            let _ = h.join();
        }
        // Last queue senders die with this Arc; workers then drain.
        drop(self.shared);
        self.workers.into_iter().map(|w| w.join().unwrap_or_default()).collect()
    }
}

/// Releases a connection-cap reservation when its holder exits, however
/// it exits.
pub(crate) struct ConnGuard(pub(crate) Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Run one replication feed on its own thread: the reactor hands over
/// the (re-blocking) socket plus any bytes it had already read past the
/// `REPL_SUBSCRIBE` frame.
pub(crate) fn serve_feed(
    stream: TcpStream,
    leftover: Vec<u8>,
    shared: &Shared,
    from_seq: u64,
    node_id: u64,
) {
    let Ok(mut write) = stream.try_clone() else { return };
    // Ack reads are a sub-millisecond poll between streaming rounds.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    let mut read = io::Cursor::new(leftover).chain(stream);
    serve_subscription(&mut read, &mut write, shared, from_seq, node_id);
}

/// Stream the op log to one subscriber: records as they arrive, ordered,
/// starting at `from_seq`; heartbeats when idle; `LOG_TRUNCATED` (then
/// hang up) when the position has fallen off the bounded log. `REPL_ACK`s
/// flow back on the same socket and update the hub for `CLUSTER_STATUS`.
/// The reader must carry a finite read timeout (see [`serve_feed`]).
fn serve_subscription<R: Read>(
    read: &mut R,
    write: &mut TcpStream,
    shared: &Shared,
    from_seq: u64,
    node_id: u64,
) {
    let Some(log) = &shared.log else {
        let _ = write_frame(
            write,
            &Response::Err(
                "replication is disabled on this server (serve with --repl-log N)".to_string(),
            )
            .encode(),
        );
        return;
    };
    let head = log.head();
    let mut next = from_seq.max(1);
    if next > head + 1 {
        let _ = write_frame(
            write,
            &Response::Err(format!("subscribe position {next} is past the log head {head}"))
                .encode(),
        );
        return;
    }
    let addr = write.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".to_string());
    // A v6 subscriber identifies itself; label the peer `{node}@{addr}`
    // so `CLUSTER_STATUS` readers can match holders to ack positions.
    let peer = if node_id != 0 { format!("{node_id}@{addr}") } else { addr };
    let id = shared.hub.register(peer);
    let heartbeat = Duration::from_millis(shared.heartbeat_ms.max(1));
    let mut last_sent = Instant::now();
    if write_frame(write, &Response::ReplHeartbeat { head }.encode()).is_err() {
        shared.hub.deregister(id);
        return;
    }
    'feed: while !shared.shutdown.load(Ordering::SeqCst) {
        // Drain whatever acks have arrived.
        loop {
            match read_frame(read) {
                Ok(None) => break 'feed,
                Ok(Some(p)) => match Request::decode(&p) {
                    Ok(Request::ReplAck { seq }) => shared.hub.ack(id, seq),
                    _ => break 'feed, // anything else on a feed is a violation
                },
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    break
                }
                Err(_) => break 'feed,
            }
        }
        match log.wait_from(next, 64, Duration::from_millis(100)) {
            Tail::Records(records) => {
                for r in records {
                    if write_frame(write, &Response::ReplOp(r.encode()).encode()).is_err() {
                        break 'feed;
                    }
                    next = r.seq + 1;
                }
                last_sent = Instant::now();
            }
            Tail::Truncated { floor } => {
                let _ = write_frame(write, &Response::LogTruncated { floor }.encode());
                break 'feed;
            }
            Tail::Timeout => {
                if last_sent.elapsed() >= heartbeat {
                    let hb = Response::ReplHeartbeat { head: log.head() };
                    if write_frame(write, &hb.encode()).is_err() {
                        break 'feed;
                    }
                    last_sent = Instant::now();
                }
            }
        }
    }
    shared.hub.deregister(id);
}

/// Direct, wire-free access to a running server's shard queues — how the
/// replica runtime applies bootstrap state and op-log records. Uses the
/// same [`EngineConfig::partition`] as the server's own insert path, so
/// the per-shard apply order is identical to the primary's.
#[derive(Debug)]
pub struct Injector {
    txs: Vec<ShardQueue>,
    cfg: EngineConfig,
    /// The server's read path, fed in lockstep with the shard queues so
    /// a replica's fast mirror tracks its authoritative engines (the
    /// replica's own op log stays empty while it follows, so the
    /// refresher can't do it).
    readpath: Option<Arc<ReadPath>>,
}

impl Injector {
    /// The engine sizing of the server behind this injector.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Apply one op-log record's keys (blocking sends; order-preserving).
    pub fn apply(&self, stream: u8, keys: &[u64]) -> io::Result<()> {
        for (shard, ks) in self.cfg.partition(keys) {
            self.txs[shard]
                .send(Job::Batch { stream, keys: ks })
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?;
        }
        if let Some(rp) = &self.readpath {
            rp.apply(stream, keys);
        }
        Ok(())
    }

    /// Replace one shard's state with a snapshot frame (bootstrap path).
    pub fn restore(&self, shard: usize, frame: &[u8]) -> io::Result<()> {
        self.shard_op(shard, |reply| Job::Restore { data: frame.to_vec(), reply })?;
        if let Some(rp) = &self.readpath {
            if rp.load(shard, frame, false).is_err() {
                rp.invalidate_all();
            }
        }
        Ok(())
    }

    /// Fold a same-placement shard snapshot into the current state
    /// (anti-entropy path; idempotent).
    pub fn merge(&self, shard: usize, frame: &[u8]) -> io::Result<()> {
        self.shard_op(shard, |reply| Job::Merge { data: frame.to_vec(), reply })?;
        if let Some(rp) = &self.readpath {
            if rp.load(shard, frame, true).is_err() {
                rp.invalidate_all();
            }
        }
        Ok(())
    }

    fn shard_op(
        &self,
        shard: usize,
        make: impl FnOnce(SyncSender<Result<(), String>>) -> Job,
    ) -> io::Result<()> {
        if shard >= self.txs.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "shard out of range"));
        }
        let (reply, rx) = sync_channel(1);
        self.txs[shard]
            .send(make(reply))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "server stopped"))?;
        match rx.recv() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(msg)) => Err(io::Error::new(io::ErrorKind::InvalidData, msg)),
            Err(_) => Err(io::Error::new(io::ErrorKind::BrokenPipe, "server stopped")),
        }
    }
}
