//! The TCP serving loop: listener, per-connection handler threads, and
//! the request → shard-queue routing with explicit backpressure.
//!
//! Threading model (all `std`):
//!
//! ```text
//!  accept thread ──► handler thread per connection ──► S bounded
//!                                                      mpsc queues ──► S shard workers
//! ```
//!
//! * **Backpressure** — inserts are admitted with `try_send`; if the
//!   target shard's queue is full *before anything was enqueued*, the
//!   client gets `BUSY{retry_after_ms}` and nothing changes. Once any
//!   sub-batch of a request has been enqueued the remainder uses blocking
//!   sends, so a request is applied exactly once or not at all.
//! * **Ordering** — one handler serves one connection serially, and the
//!   shard queues are FIFO, so a query observes every insert the same
//!   connection sent before it (the property the verify mode relies on).
//! * **Shutdown** — the `SHUTDOWN` request flips a flag and self-connects
//!   to unblock `accept`. Handlers poll the flag via a read timeout and
//!   exit; when the last sender drops, workers drain their queues and
//!   return their final stats.

use crate::codec::{read_frame, write_frame};
use crate::engine::{EngineConfig, ShardEngine};
use crate::protocol::{Request, Response, ShardStats, MAX_FRAME, PROTOCOL_VERSION};
use crate::snapshot::Checkpoint;
use crate::worker::{run_worker, Job};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything needed to start a server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Engine sizing (window, shards, memory, seed).
    pub engine: EngineConfig,
    /// Bounded depth of each shard's job queue, in jobs.
    pub queue_capacity: usize,
    /// Hint returned with `BUSY` responses.
    pub retry_after_ms: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
            queue_capacity: 256,
            retry_after_ms: 2,
        }
    }
}

/// State shared by the accept loop and every connection handler. Workers
/// are *not* behind this — they own their engines; only their queue
/// senders live here, and dropping the last `Shared` is what lets the
/// workers drain and exit.
struct Shared {
    txs: Vec<SyncSender<Job>>,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    engine: EngineConfig,
    retry_after_ms: u32,
}

impl Shared {
    /// Route one decoded request; never panics on client input.
    fn handle(&self, req: Request) -> Response {
        match req {
            Request::Insert { stream, key } => {
                self.admit(vec![(self.engine.shard_of(key), stream, vec![key])], 1)
            }
            Request::InsertBatch { stream, keys } => {
                let accepted = keys.len() as u64;
                // Partition into per-shard runs, preserving arrival order
                // within each shard (windows are order-sensitive).
                let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); self.txs.len()];
                for k in keys {
                    per_shard[self.engine.shard_of(k)].push(k);
                }
                let parts = per_shard
                    .into_iter()
                    .enumerate()
                    .filter(|(_, ks)| !ks.is_empty())
                    .map(|(s, ks)| (s, stream, ks))
                    .collect();
                self.admit(parts, accepted)
            }
            Request::QueryMember { key } => {
                let shard = self.engine.shard_of(key);
                match self.ask(shard, |reply| Job::Member { key, reply }) {
                    Some(v) => Response::Bool(v),
                    None => shutting_down(),
                }
            }
            Request::QueryCard => match self.ask_all(|reply| Job::Card { reply }) {
                Some(parts) => Response::F64(parts.into_iter().sum()),
                None => shutting_down(),
            },
            Request::QueryFreq { key } => {
                let shard = self.engine.shard_of(key);
                match self.ask(shard, |reply| Job::Freq { key, reply }) {
                    Some(v) => Response::U64(v),
                    None => shutting_down(),
                }
            }
            Request::QuerySim => match self.ask_all(|reply| Job::Sim { reply }) {
                Some(parts) => {
                    let n = parts.len() as f64;
                    Response::F64(parts.into_iter().sum::<f64>() / n)
                }
                None => shutting_down(),
            },
            Request::Stats => match self.ask_all(|reply| Job::Stats { reply }) {
                Some(parts) => Response::Stats(parts),
                None => shutting_down(),
            },
            Request::Hello { version } => {
                // Speak the lower of the two versions; v1 clients never
                // send HELLO, and v1 servers answer it with ERR.
                Response::Hello { version: version.min(PROTOCOL_VERSION) }
            }
            Request::Snapshot { shard } => {
                let shard = shard as usize;
                if shard >= self.txs.len() {
                    return Response::Err(format!(
                        "shard {shard} out of range (server has {})",
                        self.txs.len()
                    ));
                }
                match self.ask(shard, |reply| Job::Snapshot { reply }) {
                    Some(blob) => Response::Blob(blob),
                    None => shutting_down(),
                }
            }
            Request::SnapshotAll => match self.ask_all(|reply| Job::Snapshot { reply }) {
                Some(shards) => {
                    let blob = Checkpoint { cfg: self.engine, shards }.encode();
                    if 1 + blob.len() > MAX_FRAME {
                        return Response::Err(format!(
                            "checkpoint of {} bytes exceeds the {} byte frame cap; \
                             fetch per-shard snapshots instead",
                            blob.len(),
                            MAX_FRAME
                        ));
                    }
                    Response::Blob(blob)
                }
                None => shutting_down(),
            },
            Request::Restore { shard, data } => {
                let shard = shard as usize;
                if shard >= self.txs.len() {
                    return Response::Err(format!(
                        "shard {shard} out of range (server has {})",
                        self.txs.len()
                    ));
                }
                match self.ask(shard, |reply| Job::Restore { data, reply }) {
                    Some(Ok(())) => Response::Ok { accepted: 0 },
                    Some(Err(msg)) => Response::Err(msg),
                    None => shutting_down(),
                }
            }
            Request::Shutdown => {
                self.begin_shutdown();
                Response::Ok { accepted: 0 }
            }
        }
    }

    /// Admission control for inserts: `try_send` until the first part is
    /// enqueued (full queue ⇒ `BUSY`, nothing applied), blocking sends for
    /// the rest (the request is already partially committed).
    fn admit(&self, parts: Vec<(usize, u8, Vec<u64>)>, accepted: u64) -> Response {
        let mut committed = false;
        for (shard, stream, keys) in parts {
            let job = Job::Batch { stream, keys };
            if committed {
                if self.txs[shard].send(job).is_err() {
                    return shutting_down();
                }
            } else {
                match self.txs[shard].try_send(job) {
                    Ok(()) => committed = true,
                    Err(TrySendError::Full(_)) => {
                        return Response::Busy { retry_after_ms: self.retry_after_ms }
                    }
                    Err(TrySendError::Disconnected(_)) => return shutting_down(),
                }
            }
        }
        Response::Ok { accepted }
    }

    /// Rendezvous with one shard; `None` when the worker is gone.
    fn ask<T>(&self, shard: usize, make: impl FnOnce(SyncSender<T>) -> Job) -> Option<T> {
        let (tx, rx) = sync_channel(1);
        self.txs[shard].send(make(tx)).ok()?;
        rx.recv().ok()
    }

    /// Fan a query out to every shard, collecting answers in shard order.
    fn ask_all<T>(&self, mut make: impl FnMut(SyncSender<T>) -> Job) -> Option<Vec<T>> {
        let pending: Vec<_> = self
            .txs
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = sync_channel(1);
                tx.send(make(reply_tx)).ok()?;
                Some(reply_rx)
            })
            .collect::<Option<_>>()?;
        pending.into_iter().map(|rx| rx.recv().ok()).collect()
    }

    /// Flip the flag and poke the listener so `accept` returns.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.local_addr);
        }
    }
}

fn shutting_down() -> Response {
    Response::Err("server shutting down".to_string())
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`Server::shutdown`] (or send the wire `SHUTDOWN`) then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: JoinHandle<()>,
    workers: Vec<JoinHandle<ShardStats>>,
}

impl Server {
    /// Bind, spawn the shard workers and the accept loop, and return.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let engines = (0..cfg.engine.shards).map(|i| ShardEngine::new(&cfg.engine, i)).collect();
        Server::start_with_engines(cfg, engines)
    }

    /// Like [`Server::start`], but with pre-built shard engines — the
    /// restore path: engines come from a [`Checkpoint`] instead of empty.
    pub fn start_with_engines(cfg: ServerConfig, engines: Vec<ShardEngine>) -> io::Result<Server> {
        assert_eq!(engines.len(), cfg.engine.shards, "engine count must match cfg.engine.shards");
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;

        let mut txs = Vec::with_capacity(cfg.engine.shards);
        let mut workers = Vec::with_capacity(cfg.engine.shards);
        for (shard, engine) in engines.into_iter().enumerate() {
            let (tx, rx) = sync_channel(cfg.queue_capacity.max(1));
            txs.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("she-shard-{shard}"))
                    .spawn(move || run_worker(engine, rx))?,
            );
        }

        let shared = Arc::new(Shared {
            txs,
            shutdown: AtomicBool::new(false),
            local_addr,
            engine: cfg.engine,
            retry_after_ms: cfg.retry_after_ms,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread =
            std::thread::Builder::new().name("she-accept".into()).spawn(move || {
                accept_loop(listener, accept_shared);
            })?;

        Ok(Server { shared, accept_thread, workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Ask the server to stop, as if a client sent `SHUTDOWN`.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Initiate shutdown, then wait for every connection to close and
    /// every queue to drain; returns the final per-shard stats.
    pub fn join(self) -> Vec<ShardStats> {
        self.shared.begin_shutdown();
        self.wait()
    }

    /// Block until something *else* stops the server (a wire `SHUTDOWN`
    /// or [`Server::shutdown`] from another thread), then drain and
    /// return the final per-shard stats.
    pub fn wait(self) -> Vec<ShardStats> {
        let _ = self.accept_thread.join();
        // Last senders die with this Arc; workers then drain and exit.
        drop(self.shared);
        self.workers.into_iter().map(|w| w.join().unwrap_or_default()).collect()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let conn_shared = Arc::clone(&shared);
                if let Ok(h) = std::thread::Builder::new()
                    .name("she-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared))
                {
                    handlers.lock().unwrap_or_else(|p| p.into_inner()).push(h);
                }
            }
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        }
    }
    for h in handlers.into_inner().unwrap_or_else(|p| p.into_inner()) {
        let _ = h.join();
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // The timeout is the shutdown poll interval, not a client deadline.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut read_half = stream;
    loop {
        match read_frame(&mut read_half) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                let resp = match Request::decode(&payload) {
                    Ok(req) => shared.handle(req),
                    Err(e) => Response::Err(e.to_string()),
                };
                if write_frame(&mut write_half, &resp.encode()).is_err() {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}
