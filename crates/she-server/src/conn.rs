//! Sans-IO protocol connection state machine.
//!
//! A [`Connection`] owns both directions of one client connection as pure
//! state: callers *feed* it raw bytes ([`Connection::feed`]) and *poll*
//! typed events out ([`Connection::poll`]); responses are queued with
//! [`Connection::push_response`] and drained as byte slices
//! ([`Connection::out_slices`] / [`Connection::advance_out`]). No sockets,
//! no threads, no clocks — time enters only as the `now_ms` the caller
//! passes in, so the epoll reactor, unit tests, fuzzers, and `she-chaos`
//! all drive the exact same protocol logic.
//!
//! Framing matches `codec.rs` byte for byte: a `u32` little-endian payload
//! length followed by the payload, payload at most
//! [`MAX_FRAME`](crate::protocol::MAX_FRAME) bytes. The state machine
//! preserves the blocking codec's semantics:
//!
//! * an oversize length prefix is **fatal** ([`Event::Fatal`]) — the
//!   stream is desynchronised and the only safe response is to close;
//! * a payload that does not decode is [`Event::Bad`] — the connection
//!   stays synchronised (the frame boundary is known), the caller answers
//!   `ERR` and keeps serving, exactly like the thread-per-connection
//!   handler did;
//! * the per-frame deadline clock starts when the first byte of a
//!   *partial* frame arrives and clears when no partial frame is pending,
//!   so [`Connection::stalled`] reproduces the slow-loris eviction rule
//!   (`Idle` connections with no buffered bytes are never stalled).
//!
//! Overload and deadline policy live in the caller (the reactor): shed a
//! query by pushing `OVERLOADED`, evict a peer when `stalled` reports
//! true. The state machine just keeps the bytes and frames straight.

use crate::protocol::{ProtoError, Request, Response, MAX_FRAME};
use she_core::convert::usize_of;
use std::collections::VecDeque;

/// One event from [`Connection::poll`].
#[derive(Debug, PartialEq)]
pub enum Event {
    /// A complete frame arrived and decoded.
    Request(Request),
    /// A complete frame arrived but its payload does not decode; answer
    /// an `ERR` response — the stream itself is still synchronised.
    Bad(ProtoError),
    /// No complete frame buffered; feed more bytes.
    NeedMore,
    /// The stream is unrecoverable (oversize length prefix); close it.
    Fatal,
}

/// One event from [`Connection::poll_frame`] — the framing layer below
/// [`Event`], exposed so fuzzers can check the payload bytes themselves.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame payload.
    Payload(Vec<u8>),
    /// No complete frame buffered; feed more bytes.
    NeedMore,
    /// Oversize length prefix; the stream is unrecoverable.
    Fatal,
}

/// Transport-free protocol state for one connection: an input accumulator
/// with an incremental frame parser, and an outgoing frame queue.
#[derive(Debug, Default)]
pub struct Connection {
    /// Raw bytes fed in and not yet consumed (`pos..` is live).
    input: Vec<u8>,
    /// Parse cursor into `input`; compacted on the next `feed`.
    pos: usize,
    /// Encoded outgoing frames (length prefix included), oldest first.
    out: VecDeque<Vec<u8>>,
    /// Bytes of `out.front()` already written by the caller.
    out_front: usize,
    /// Total unwritten output bytes across `out`.
    out_bytes: usize,
    /// When the currently pending partial frame started arriving; `None`
    /// when no partial frame is buffered (idle connections never stall).
    frame_start_ms: Option<u64>,
    /// Timestamp of the most recent `feed`, for re-arming the deadline
    /// clock when a popped frame leaves partial bytes behind.
    last_feed_ms: u64,
    /// Set once an oversize prefix was seen; the stream is dead.
    fatal: bool,
}

impl Connection {
    /// A fresh connection with empty buffers.
    pub fn new() -> Connection {
        Connection::default()
    }

    /// Feed raw bytes received at `now_ms` (any monotone millisecond
    /// clock; only differences are used).
    pub fn feed(&mut self, bytes: &[u8], now_ms: u64) {
        self.last_feed_ms = now_ms;
        if self.pos > 0 {
            self.input.drain(..self.pos);
            self.pos = 0;
        }
        self.input.extend_from_slice(bytes);
        if self.frame_start_ms.is_none() && self.pos < self.input.len() {
            self.frame_start_ms = Some(now_ms);
        }
    }

    /// Pop the next complete frame payload, if one is buffered.
    pub fn poll_frame(&mut self) -> FrameEvent {
        if self.fatal {
            return FrameEvent::Fatal;
        }
        let avail = self.input.len() - self.pos;
        if avail < 4 {
            return FrameEvent::NeedMore;
        }
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(&self.input[self.pos..self.pos + 4]);
        let len = usize_of(u64::from(u32::from_le_bytes(len_buf)));
        if len > MAX_FRAME {
            // Same verdict as the blocking codec's InvalidData: a hostile
            // or corrupt prefix must not drive an allocation, and the
            // stream can never resynchronise.
            self.fatal = true;
            return FrameEvent::Fatal;
        }
        if avail < 4 + len {
            return FrameEvent::NeedMore;
        }
        let payload = self.input[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        if self.pos == self.input.len() {
            self.input.clear();
            self.pos = 0;
            self.frame_start_ms = None;
        } else {
            // The next frame already started arriving; its deadline clock
            // starts at the feed that delivered its first byte.
            self.frame_start_ms = Some(self.last_feed_ms);
        }
        FrameEvent::Payload(payload)
    }

    /// Pop and decode the next complete frame.
    pub fn poll(&mut self) -> Event {
        match self.poll_frame() {
            FrameEvent::Payload(payload) => match Request::decode(&payload) {
                Ok(req) => Event::Request(req),
                Err(e) => Event::Bad(e),
            },
            FrameEvent::NeedMore => Event::NeedMore,
            FrameEvent::Fatal => Event::Fatal,
        }
    }

    /// Queue one response frame for writing.
    pub fn push_response(&mut self, resp: &Response) {
        self.push_payload(&resp.encode());
    }

    /// Queue one raw frame payload for writing (length prefix added).
    pub fn push_payload(&mut self, payload: &[u8]) {
        debug_assert!(payload.len() <= MAX_FRAME, "oversize response payload");
        let mut framed = Vec::with_capacity(4 + payload.len());
        // audit:allow(growth): one framed response, capped at MAX_FRAME by every Response encoder
        framed.extend_from_slice(&u32::try_from(payload.len()).unwrap_or(u32::MAX).to_le_bytes());
        framed.extend_from_slice(payload);
        self.out_bytes += framed.len();
        // audit:allow(growth): callers dispatch at most one request at a time per connection, so the queue holds at most the responses to frames already buffered in `input`
        self.out.push_back(framed);
    }

    /// Is there unwritten output?
    pub fn has_output(&self) -> bool {
        self.out_bytes > 0
    }

    /// Total unwritten output bytes.
    pub fn out_bytes(&self) -> usize {
        self.out_bytes
    }

    /// The unwritten output as a sequence of byte slices, oldest first —
    /// ready for a vectored write. Pair with [`Connection::advance_out`].
    pub fn out_slices(&self) -> impl Iterator<Item = &[u8]> {
        let front = self.out_front;
        self.out.iter().enumerate().map(move |(i, b)| if i == 0 { &b[front..] } else { &b[..] })
    }

    /// Record that the caller wrote `n` bytes of the queued output.
    pub fn advance_out(&mut self, mut n: usize) {
        self.out_bytes = self.out_bytes.saturating_sub(n);
        while n > 0 {
            let Some(front) = self.out.front() else { return };
            let left = front.len() - self.out_front;
            if n >= left {
                n -= left;
                self.out.pop_front();
                self.out_front = 0;
            } else {
                self.out_front += n;
                return;
            }
        }
    }

    /// Slow-loris check: a partial frame has been pending for at least
    /// `limit_ms`. Connections with no buffered partial frame are idle,
    /// never stalled.
    pub fn stalled(&self, now_ms: u64, limit_ms: u64) -> bool {
        match self.frame_start_ms {
            Some(t0) => now_ms.saturating_sub(t0) >= limit_ms,
            None => false,
        }
    }

    /// Are unconsumed input bytes buffered (complete or partial frames)?
    pub fn has_buffered_input(&self) -> bool {
        self.pos < self.input.len()
    }

    /// Did the stream hit a fatal framing error?
    pub fn is_fatal(&self) -> bool {
        self.fatal
    }

    /// Remove and return every unconsumed input byte — the replication
    /// hand-off: when a connection turns into a feed, bytes already read
    /// from the socket must travel with the stream to the feed thread.
    pub fn take_input(&mut self) -> Vec<u8> {
        let rest = self.input[self.pos..].to_vec();
        self.input.clear();
        self.pos = 0;
        self.frame_start_ms = None;
        rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut b = u32::try_from(payload.len()).unwrap().to_le_bytes().to_vec();
        b.extend_from_slice(payload);
        b
    }

    #[test]
    fn whole_frame_decodes() {
        let mut c = Connection::new();
        c.feed(&frame(&Request::QueryCard.encode()), 0);
        assert_eq!(c.poll(), Event::Request(Request::QueryCard));
        assert_eq!(c.poll(), Event::NeedMore);
        assert!(!c.has_buffered_input());
    }

    #[test]
    fn split_frame_needs_more_then_decodes() {
        let bytes = frame(&Request::QueryFreq { key: 42 }.encode());
        for split in 0..bytes.len() {
            let mut c = Connection::new();
            c.feed(&bytes[..split], 0);
            assert_eq!(c.poll(), Event::NeedMore, "split at {split}");
            c.feed(&bytes[split..], 1);
            assert_eq!(c.poll(), Event::Request(Request::QueryFreq { key: 42 }));
        }
    }

    #[test]
    fn pipelined_frames_pop_in_order() {
        let mut c = Connection::new();
        let mut bytes = frame(&Request::Insert { stream: 0, key: 7 }.encode());
        bytes.extend_from_slice(&frame(&Request::QueryMember { key: 7 }.encode()));
        c.feed(&bytes, 0);
        assert_eq!(c.poll(), Event::Request(Request::Insert { stream: 0, key: 7 }));
        assert_eq!(c.poll(), Event::Request(Request::QueryMember { key: 7 }));
        assert_eq!(c.poll(), Event::NeedMore);
    }

    #[test]
    fn bad_payload_is_recoverable() {
        let mut c = Connection::new();
        c.feed(&frame(&[0xFF, 1, 2, 3]), 0);
        c.feed(&frame(&Request::QueryCard.encode()), 0);
        assert!(matches!(c.poll(), Event::Bad(ProtoError::BadOpcode(0xFF))));
        assert_eq!(c.poll(), Event::Request(Request::QueryCard), "stream stays synchronised");
    }

    #[test]
    fn oversize_prefix_is_fatal_and_sticky() {
        let mut c = Connection::new();
        c.feed(&u32::MAX.to_le_bytes(), 0);
        assert_eq!(c.poll(), Event::Fatal);
        c.feed(&frame(&Request::QueryCard.encode()), 1);
        assert_eq!(c.poll(), Event::Fatal, "a desynchronised stream never recovers");
        assert!(c.is_fatal());
    }

    #[test]
    fn stall_clock_tracks_partial_frames_only() {
        let mut c = Connection::new();
        assert!(!c.stalled(10_000, 100), "no bytes: idle, never stalled");
        c.feed(&[5, 0], 1_000); // torn header
        assert!(!c.stalled(1_050, 100));
        assert!(c.stalled(1_100, 100));
        // Completing the frame clears the clock.
        c.feed(&[0, 0, 1, 2, 3, 4, 5], 1_120);
        assert!(matches!(c.poll_frame(), FrameEvent::Payload(p) if p == [1, 2, 3, 4, 5]));
        assert!(!c.stalled(99_999, 100), "no partial frame pending");
    }

    #[test]
    fn stall_clock_rearms_for_a_trailing_partial_frame() {
        let mut c = Connection::new();
        let mut bytes = frame(b"x");
        bytes.extend_from_slice(&[9, 0]); // next frame's torn header
        c.feed(&bytes, 500);
        assert!(matches!(c.poll_frame(), FrameEvent::Payload(_)));
        assert!(c.stalled(700, 200), "trailing partial frame keeps the clock armed");
    }

    #[test]
    fn output_queue_round_trips_through_partial_writes() {
        let mut c = Connection::new();
        c.push_response(&Response::Ok { accepted: 3 });
        c.push_response(&Response::Bool(true));
        let total = c.out_bytes();
        let mut written = Vec::new();
        // Drain two bytes at a time through the slice view.
        while c.has_output() {
            let take: Vec<u8> = c.out_slices().flatten().copied().take(2).collect();
            written.extend_from_slice(&take);
            c.advance_out(take.len());
        }
        assert_eq!(written.len(), total);
        // Re-parse what was "written": must be the two framed responses.
        let mut expect = frame(&Response::Ok { accepted: 3 }.encode());
        expect.extend_from_slice(&frame(&Response::Bool(true).encode()));
        assert_eq!(written, expect);
    }

    #[test]
    fn take_input_hands_off_leftover_bytes() {
        let mut c = Connection::new();
        let mut bytes = frame(&Request::ReplSubscribe { from_seq: 1, node_id: 0 }.encode());
        bytes.extend_from_slice(&frame(&Request::ReplAck { seq: 9 }.encode()));
        c.feed(&bytes, 0);
        assert_eq!(c.poll(), Event::Request(Request::ReplSubscribe { from_seq: 1, node_id: 0 }));
        let leftover = c.take_input();
        assert_eq!(leftover, frame(&Request::ReplAck { seq: 9 }.encode()));
        assert!(!c.has_buffered_input());
    }
}
